// Package tracefile serializes pipeline trace events to a compact,
// self-describing JSONL format and converts them to Chrome
// trace-event/Perfetto JSON for timeline visualization.
//
// The on-disk format is one JSON object per line. The first line is a
// header identifying the format and the run that produced the trace;
// every following line is one event with single-letter keys:
//
//	{"format":"retstack-trace","version":1,"label":"t3-c0", ...}
//	{"c":152,"k":"ras-push","s":40,"pc":4196,"w":201326608,"x":4200,"a":3,"f":16}
//
// c=cycle, k=kind, s=sequence number, p=path token, pc=fetch PC, w=raw
// 32-bit instruction word, x=kind-specific extra, a=kind-specific aux,
// f=flag bits (pipeline.TraceFlags). Zero-valued fields other than c and
// k are omitted. The writer is allocation-free per event so it can run
// inline under a live simulation.
package tracefile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"retstack/internal/isa"
	"retstack/internal/pipeline"
)

// Format and Version identify the JSONL trace container.
const (
	Format  = "retstack-trace"
	Version = 1
)

// Header is the first line of every trace file.
type Header struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Label names the producing run (experiment and cell, or a CLI tag).
	Label string `json:"label,omitempty"`
	// Exp and Cell locate the trace inside a sweep, when it came from one.
	Exp  string `json:"exp,omitempty"`
	Cell int    `json:"cell,omitempty"`
	// Buf records the causal ring capacity the attribution layer ran with.
	Buf int `json:"buf,omitempty"`
}

// Writer streams events to JSONL. It implements pipeline.Tracer and is
// allocation-free per event once constructed.
type Writer struct {
	w      *bufio.Writer
	closer io.Closer
	buf    []byte
	events uint64
	err    error
}

// NewWriter wraps w, emitting the header line immediately.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	h.Format = Format
	h.Version = Version
	line, err := json.Marshal(h)
	if err != nil {
		return nil, err
	}
	tw := &Writer{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 256)}
	if c, ok := w.(io.Closer); ok {
		tw.closer = c
	}
	if _, err := tw.w.Write(append(line, '\n')); err != nil {
		return nil, err
	}
	return tw, nil
}

// Create opens path for writing and emits the header.
func Create(path string, h Header) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := NewWriter(f, h)
	if err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Event implements pipeline.Tracer.
func (t *Writer) Event(e pipeline.TraceEvent) {
	if t.err != nil {
		return
	}
	b := t.buf[:0]
	b = append(b, `{"c":`...)
	b = strconv.AppendUint(b, e.Cycle, 10)
	b = append(b, `,"k":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, '"')
	if e.Seq != 0 {
		b = append(b, `,"s":`...)
		b = strconv.AppendUint(b, e.Seq, 10)
	}
	if e.Path != 0 {
		b = append(b, `,"p":`...)
		b = strconv.AppendUint(b, e.Path, 10)
	}
	if e.PC != 0 {
		b = append(b, `,"pc":`...)
		b = strconv.AppendUint(b, uint64(e.PC), 10)
	}
	if e.Inst.Raw != 0 {
		b = append(b, `,"w":`...)
		b = strconv.AppendUint(b, uint64(e.Inst.Raw), 10)
	}
	if e.Extra != 0 {
		b = append(b, `,"x":`...)
		b = strconv.AppendUint(b, uint64(e.Extra), 10)
	}
	if e.Aux != 0 {
		b = append(b, `,"a":`...)
		b = strconv.AppendUint(b, uint64(e.Aux), 10)
	}
	if e.Flags != 0 {
		b = append(b, `,"f":`...)
		b = strconv.AppendUint(b, uint64(e.Flags), 10)
	}
	b = append(b, '}', '\n')
	t.buf = b
	if _, err := t.w.Write(b); err != nil {
		t.err = err
	}
	t.events++
}

// Events returns how many events were written.
func (t *Writer) Events() uint64 { return t.events }

// Err returns the first write error, if any.
func (t *Writer) Err() error { return t.err }

// Close flushes and closes the underlying file (when Create opened one).
func (t *Writer) Close() error {
	ferr := t.w.Flush()
	if t.err == nil {
		t.err = ferr
	}
	if t.closer != nil {
		if cerr := t.closer.Close(); t.err == nil {
			t.err = cerr
		}
	}
	return t.err
}

// Record is one decoded event line.
type Record struct {
	Cycle uint64 `json:"c"`
	Kind  string `json:"k"`
	Seq   uint64 `json:"s,omitempty"`
	Path  uint64 `json:"p,omitempty"`
	PC    uint32 `json:"pc,omitempty"`
	Word  uint32 `json:"w,omitempty"`
	Extra uint32 `json:"x,omitempty"`
	Aux   uint32 `json:"a,omitempty"`
	Flags uint16 `json:"f,omitempty"`
}

// Inst re-decodes the instruction word captured with the event.
func (r Record) Inst() isa.Inst { return isa.Decode(r.Word) }

// FlagString renders the flag bits with the pipeline's names.
func (r Record) FlagString() string { return pipeline.TraceFlags(r.Flags).String() }

// Reader decodes a JSONL trace stream.
type Reader struct {
	sc     *bufio.Scanner
	closer io.Closer
	hdr    Header
	line   int
}

// NewReader validates the header line of r and prepares to iterate.
func NewReader(r io.Reader) (*Reader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("tracefile: empty input")
	}
	var h Header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("tracefile: bad header: %w", err)
	}
	if h.Format != Format {
		return nil, fmt.Errorf("tracefile: format %q, want %q", h.Format, Format)
	}
	if h.Version != Version {
		return nil, fmt.Errorf("tracefile: version %d, want %d", h.Version, Version)
	}
	tr := &Reader{sc: sc, hdr: h, line: 1}
	if c, ok := r.(io.Closer); ok {
		tr.closer = c
	}
	return tr, nil
}

// Open opens a trace file.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// Header returns the decoded file header.
func (r *Reader) Header() Header { return r.hdr }

// Next returns the next event record, or io.EOF after the last one.
func (r *Reader) Next() (Record, error) {
	for r.sc.Scan() {
		r.line++
		b := r.sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return Record{}, fmt.Errorf("tracefile: line %d: %w", r.line, err)
		}
		return rec, nil
	}
	if err := r.sc.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

// Close closes the underlying file (when Open opened one).
func (r *Reader) Close() error {
	if r.closer != nil {
		return r.closer.Close()
	}
	return nil
}
