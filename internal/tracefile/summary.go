package tracefile

import (
	"fmt"
	"io"
	"sort"

	"retstack/internal/pipeline"
)

// Summary is the aggregate view of one trace: event counts by kind,
// attribution counts by cause, and the cycle/sequence span. It is what
// `rastrace summarize` renders and what reconciliation checks against
// the run's telemetry counters.
type Summary struct {
	Header     Header
	Events     uint64
	ByKind     map[string]uint64
	Causes     map[string]uint64
	Attributed uint64
	FirstCycle uint64
	LastCycle  uint64
	MaxSeq     uint64
}

// Summarize validates and aggregates every record in r: kinds must be
// known, attribution causes in range, and cycles non-decreasing (the
// writer emits in simulation order).
func Summarize(r *Reader) (*Summary, error) {
	s := &Summary{
		Header: r.Header(),
		ByKind: map[string]uint64{},
		Causes: map[string]uint64{},
	}
	first := true
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return s, nil
		}
		if err != nil {
			return nil, err
		}
		if _, ok := pipeline.TraceKindByName(rec.Kind); !ok {
			return nil, fmt.Errorf("event %d: unknown kind %q", s.Events+1, rec.Kind)
		}
		if rec.Cycle < s.LastCycle {
			return nil, fmt.Errorf("event %d: cycle %d goes backwards (last %d)",
				s.Events+1, rec.Cycle, s.LastCycle)
		}
		if first {
			s.FirstCycle = rec.Cycle
			first = false
		}
		s.LastCycle = rec.Cycle
		s.Events++
		s.ByKind[rec.Kind]++
		if rec.Seq > s.MaxSeq {
			s.MaxSeq = rec.Seq
		}
		if rec.Kind == "attrib" {
			if int(rec.Extra) >= pipeline.NumAttribCauses {
				return nil, fmt.Errorf("event %d: attribution cause %d out of range",
					s.Events, rec.Extra)
			}
			s.Causes[pipeline.AttribCause(rec.Extra).String()]++
			s.Attributed++
		}
	}
}

// CheckTrace validates the stream and discards the aggregate.
func CheckTrace(r *Reader) error {
	_, err := Summarize(r)
	return err
}

// Render writes the summary as a stable, diff-friendly table: kinds in
// enum order, causes in enum order, zero rows omitted.
func (s *Summary) Render(w io.Writer) {
	label := s.Header.Label
	if label == "" {
		label = "(unlabeled)"
	}
	fmt.Fprintf(w, "trace %s: %d events, cycles %d..%d, %d instructions\n",
		label, s.Events, s.FirstCycle, s.LastCycle, s.MaxSeq)
	for _, k := range pipeline.TraceKinds() {
		if n := s.ByKind[k]; n > 0 {
			fmt.Fprintf(w, "  %-12s %10d\n", k, n)
		}
	}
	if s.Attributed > 0 {
		fmt.Fprintf(w, "attribution (%d mispredicted returns):\n", s.Attributed)
		for _, c := range pipeline.AttribCauseNames() {
			if n := s.Causes[c]; n > 0 {
				fmt.Fprintf(w, "  %-18s %10d  (%5.1f%%)\n", c, n,
					100*float64(n)/float64(s.Attributed))
			}
		}
	}
}

// Reconcile cross-checks the trace's attribution counts against the
// retstack_attrib_mispredicts_total samples of a Prometheus exposition
// (series → value, as parsed by telemetry.Samples). Every cause present
// on either side must match exactly.
func (s *Summary) Reconcile(samples map[string]float64, metric string) error {
	fromProm := map[string]uint64{}
	for series, v := range samples {
		name, labels := splitSeries(series)
		if name != metric {
			continue
		}
		cause, ok := labels["cause"]
		if !ok {
			return fmt.Errorf("reconcile: %s sample without cause label: %s", metric, series)
		}
		fromProm[cause] += uint64(v)
	}
	if len(fromProm) == 0 {
		return fmt.Errorf("reconcile: exposition has no %s samples", metric)
	}
	for _, c := range pipeline.AttribCauseNames() {
		if got, want := fromProm[c], s.Causes[c]; got != want {
			return fmt.Errorf("reconcile: cause %q: telemetry says %d, trace says %d", c, got, want)
		}
	}
	return nil
}

// splitSeries separates `name{k="v",...}` into the metric name and its
// label map.
func splitSeries(series string) (string, map[string]string) {
	labels := map[string]string{}
	open := -1
	for i, r := range series {
		if r == '{' {
			open = i
			break
		}
	}
	if open < 0 {
		return series, labels
	}
	name := series[:open]
	body := series[open+1:]
	if n := len(body); n > 0 && body[n-1] == '}' {
		body = body[:n-1]
	}
	for _, kv := range splitLabelPairs(body) {
		eq := -1
		for i := 0; i < len(kv); i++ {
			if kv[i] == '=' {
				eq = i
				break
			}
		}
		if eq < 0 {
			continue
		}
		v := kv[eq+1:]
		if len(v) >= 2 && v[0] == '"' && v[len(v)-1] == '"' {
			v = v[1 : len(v)-1]
		}
		labels[kv[:eq]] = v
	}
	return name, labels
}

// splitLabelPairs splits a label body on commas outside quotes.
func splitLabelPairs(body string) []string {
	var out []string
	start, inQ := 0, false
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			if i == 0 || body[i-1] != '\\' {
				inQ = !inQ
			}
		case ',':
			if !inQ {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	if start < len(body) {
		out = append(out, body[start:])
	}
	return out
}

// SortedCauses returns the non-zero causes ordered by descending count
// (ties broken by enum order), for compact reporting.
func (s *Summary) SortedCauses() []string {
	names := make([]string, 0, len(s.Causes))
	for _, c := range pipeline.AttribCauseNames() {
		if s.Causes[c] > 0 {
			names = append(names, c)
		}
	}
	sort.SliceStable(names, func(i, j int) bool {
		return s.Causes[names[i]] > s.Causes[names[j]]
	})
	return names
}
