package telemetry

import (
	"bytes"
	"io"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentInstruments hammers one counter, gauge, and histogram from
// many goroutines; run under -race this pins the lock-free hot path.
func TestConcurrentInstruments(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_ops_total", "ops")
	g := reg.Gauge("t_inflight", "inflight")
	h := reg.Histogram("t_latency", "latency", []float64{1, 2, 4})

	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i % 5))
				// Concurrent lookup of an existing instrument must return
				// the same child, not a fresh one.
				reg.Counter("t_ops_total", "ops").Add(0)
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	wantSum := float64(workers) * per / 5 * (0 + 1 + 2 + 3 + 4)
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %g, want %g", got, wantSum)
	}
}

// TestScrapeDuringRegistration writes the exposition concurrently with
// lazy instrument registration — the live /metrics case, where a scrape
// lands mid-sweep while SweepObserver.CellDone is still creating labeled
// children. Under -race this pins WritePrometheus snapshotting the
// registration structures while holding the lock.
func TestScrapeDuringRegistration(t *testing.T) {
	reg := NewRegistry()
	const workers, per = 4, 500
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			if err := reg.WritePrometheus(io.Discard); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				reg.Counter("t_busy_ms_total", "busy", "worker", strconv.Itoa(w*per+i)).Inc()
				reg.Histogram("t_seconds", "latency", []float64{1, 2}).Observe(0.5)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scraper.Wait()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := CheckExposition(strings.NewReader(b.String())); err != nil {
		t.Errorf("final exposition invalid: %v", err)
	}
}

// TestNilSafety: every instrument and the registry itself must no-op when
// nil — that is the "telemetry off" fast path.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("x_total", "x").Inc()
	reg.Gauge("g", "g").Set(3)
	reg.Histogram("h", "h", []float64{1}).Observe(2)
	if err := reg.WritePrometheus(nil); err != nil {
		t.Fatalf("nil registry write: %v", err)
	}
	var log *EventLog
	log.Emit("x", nil)
	if err := log.Close(); err != nil {
		t.Fatalf("nil log close: %v", err)
	}
	NewPipelineMetrics(nil).Observe(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14)
	var obs *SweepObserver
	obs.CellStart(0, 0)
	obs.CellDone(0, 0, 0, nil)
}

// TestExpositionGolden pins the exact exposition text for a small
// registry: format drift is an API break for scrapers.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("app_requests_total", "requests served", "code", "200").Add(3)
	reg.Counter("app_requests_total", "requests served", "code", "500").Add(1)
	reg.Gauge("app_inflight", "in-flight requests").Set(2)
	h := reg.Histogram("app_seconds", "request latency", []float64{0.5, 1})
	h.Observe(0.3)
	h.Observe(0.75)
	h.Observe(4)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_inflight in-flight requests
# TYPE app_inflight gauge
app_inflight 2
# HELP app_requests_total requests served
# TYPE app_requests_total counter
app_requests_total{code="200"} 3
app_requests_total{code="500"} 1
# HELP app_seconds request latency
# TYPE app_seconds histogram
app_seconds_bucket{le="0.5"} 1
app_seconds_bucket{le="1"} 2
app_seconds_bucket{le="+Inf"} 3
app_seconds_sum 5.05
app_seconds_count 3
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
	if err := CheckExposition(strings.NewReader(b.String())); err != nil {
		t.Errorf("golden exposition fails its own check: %v", err)
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type conflict")
		}
	}()
	reg := NewRegistry()
	reg.Counter("dual", "as counter")
	reg.Gauge("dual", "as gauge")
}

func TestCheckExposition(t *testing.T) {
	bad := []struct{ name, text string }{
		{"no type", "loose_metric 1\n"},
		{"dup type", "# TYPE a counter\n# TYPE a counter\na 1\n"},
		{"dup series", "# TYPE a counter\na 1\na 2\n"},
		{"bad value", "# TYPE a counter\na one\n"},
		{"empty", "\n"},
	}
	for _, tc := range bad {
		if err := CheckExposition(strings.NewReader(tc.text)); err == nil {
			t.Errorf("%s: check passed, want error", tc.name)
		}
	}
	good := "# TYPE a counter\na{x=\"1\"} 1\na{x=\"2\"} 2\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 0.5\nh_count 1\n"
	if err := CheckExposition(strings.NewReader(good)); err != nil {
		t.Errorf("good exposition rejected: %v", err)
	}
}

// TestServerMetricsEagerRegistration: all four queue/health families
// exist (at zero) the moment the collector is built, and the callbacks
// move the right instruments. promcheck -require in CI depends on the
// eager registration.
func TestServerMetricsEagerRegistration(t *testing.T) {
	reg := NewRegistry()
	m := NewServerMetrics(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		MetricQueueDepth + " 0",
		MetricQueueRecovered + " 0",
		MetricQueueRequeued + " 0",
		MetricServerDegraded + " 0",
	} {
		if !strings.Contains(buf.String(), fam) {
			t.Errorf("fresh exposition missing %q:\n%s", fam, buf.String())
		}
	}
	m.QueueDepth(2)
	m.QueueDepth(-1)
	m.CampaignRecovered()
	m.CampaignRequeued()
	m.CampaignRequeued()
	m.SetDegraded(true)
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		MetricQueueDepth + " 1",
		MetricQueueRecovered + " 1",
		MetricQueueRequeued + " 2",
		MetricServerDegraded + " 1",
	} {
		if !strings.Contains(buf.String(), fam) {
			t.Errorf("exposition missing %q after callbacks:\n%s", fam, buf.String())
		}
	}
	m.SetDegraded(false)

	// Nil-safety: a server without a registry must not care.
	var nilM *ServerMetrics
	nilM.QueueDepth(1)
	nilM.CampaignRecovered()
	nilM.CampaignRequeued()
	nilM.SetDegraded(true)
}
