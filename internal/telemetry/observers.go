package telemetry

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Metric names exposed by the observers below. Declared as constants so
// the CLIs, tests, and docs agree on the schema.
const (
	MetricSweepInflight    = "retstack_sweep_cells_inflight"
	MetricSweepCompleted   = "retstack_sweep_cells_completed_total"
	MetricSweepErrors      = "retstack_sweep_cell_errors_total"
	MetricSweepRetries     = "retstack_sweep_cell_retries_total"
	MetricSweepCellSeconds = "retstack_sweep_cell_seconds"
	MetricSweepWorkerMs    = "retstack_sweep_worker_busy_ms_total"

	MetricSamples     = "retstack_pipeline_samples_total"
	MetricRASDepth    = "retstack_pipeline_ras_depth"
	MetricRUUOcc      = "retstack_pipeline_ruu_occupancy"
	MetricFetchQOcc   = "retstack_pipeline_fetchq_occupancy"
	MetricLivePaths   = "retstack_pipeline_live_paths"
	MetricCheckpoints = "retstack_pipeline_checkpoints_live"
	MetricSquashes    = "retstack_pipeline_squashes_total"
	MetricRecoveries  = "retstack_pipeline_recoveries_total"

	MetricPredecodeHits      = "retstack_pipeline_predecode_hits_total"
	MetricPredecodeFallbacks = "retstack_pipeline_predecode_fallbacks_total"

	MetricOverlaySpills = "retstack_pipeline_overlay_spills_total"
	MetricOverlayReuses = "retstack_pipeline_overlay_reuses_total"

	MetricBlockHits          = "retstack_emu_block_hits_total"
	MetricBlockBuilds        = "retstack_emu_block_builds_total"
	MetricBlockInvalidations = "retstack_emu_block_invalidations_total"

	// Trace/attribution metrics (rasbench -trace-out). Mispredict
	// attributions are labeled by cause; stage cycles by pipeline stage.
	MetricAttribMispredicts  = "retstack_attrib_mispredicts_total"
	MetricAttribStageCycles  = "retstack_attrib_stage_cycles_total"
	MetricTraceEvents        = "retstack_trace_events_total"
	MetricTraceRepairLatency = "retstack_trace_repair_latency_cycles"
	MetricTraceSquashDepth   = "retstack_trace_squash_depth"

	// Content-addressed result store metrics (rasbench -store, rasserve).
	MetricStoreHits       = "retstack_store_hits_total"
	MetricStoreMisses     = "retstack_store_misses_total"
	MetricStorePuts       = "retstack_store_puts_total"
	MetricStoreShared     = "retstack_store_shared_total"
	MetricStoreGetSeconds = "retstack_store_get_seconds"
	MetricStorePutSeconds = "retstack_store_put_seconds"

	// Durable campaign queue and serving-health metrics (rasserve).
	// Depth counts submitted-but-unfinished campaigns; recovered counts
	// non-terminal campaigns re-adopted from the campaign log at boot;
	// requeued counts every time a campaign went back on the queue for
	// another attempt. Degraded is 0/1: the server lost its result store
	// to an I/O fault and is serving compute-without-cache.
	MetricQueueDepth     = "retstack_queue_depth"
	MetricQueueRecovered = "retstack_queue_recovered_total"
	MetricQueueRequeued  = "retstack_queue_requeued_total"
	MetricServerDegraded = "retstack_server_degraded"
)

// sweepCellBounds are the per-cell wall-clock histogram buckets.
var sweepCellBounds = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}

// sweepCellBuckets is len(sweepCellBounds)+1 (the +Inf bucket), spelled as
// a constant so each worker's accumulator can inline its bucket array.
const sweepCellBuckets = 14

// sweepWorkerCell is one worker's private accumulator. Only the owning
// worker writes it during a sweep; Drain reads after the sweep joins. The
// pad keeps adjacent workers' counters on separate cache lines so the
// observer never induces the false sharing it exists to measure.
type sweepWorkerCell struct {
	completed uint64
	errors    uint64
	busyMs    uint64
	secSum    float64
	buckets   [sweepCellBuckets]uint64
	_         [16]byte
}

// SweepObserver feeds sweep-cell lifecycle callbacks into a registry and
// an event log. It satisfies internal/sweep.Monitor structurally, keeping
// this package dependency-free. Either sink may be nil; a fully nil
// observer is still safe to call.
//
// Per-cell accounting lands in per-worker cells the owning worker alone
// writes — no shared counter increments and no registry-lock lookups on
// the cell hot path. The inflight gauge stays a live shared atomic (it is
// a point-in-time quantity; deferring it would make it lie), and retries
// stay shared (rare, and the retry callback carries no worker index).
// Call Drain after the sweep completes to fold the cells into the
// registry; until then the completed/errors/seconds/worker-busy families
// read as zero (they are registered eagerly so the schema is present
// regardless).
type SweepObserver struct {
	reg    *Registry
	log    *EventLog
	labels []string // constant labels (e.g. exp="t3") on every metric

	inflight  *Gauge
	completed *Counter
	errors    *Counter
	retries   *Counter
	seconds   *Histogram

	cells atomic.Pointer[[]*sweepWorkerCell]
	grow  sync.Mutex // serializes cell-table growth only
}

// NewSweepObserver builds an observer publishing under the given constant
// labels (alternating key/value, e.g. "exp", "t3").
func NewSweepObserver(reg *Registry, log *EventLog, labels ...string) *SweepObserver {
	return &SweepObserver{
		reg:    reg,
		log:    log,
		labels: labels,
		inflight: reg.Gauge(MetricSweepInflight,
			"sweep cells currently executing", labels...),
		completed: reg.Counter(MetricSweepCompleted,
			"sweep cells finished", labels...),
		errors: reg.Counter(MetricSweepErrors,
			"sweep cells finished with an error", labels...),
		retries: reg.Counter(MetricSweepRetries,
			"failed cell attempts that were retried", labels...),
		seconds: reg.Histogram(MetricSweepCellSeconds,
			"per-cell simulation wall clock", sweepCellBounds, labels...),
	}
}

// cell returns worker w's accumulator, growing the table on first sight of
// a new worker id (once per worker per observer; the warm path is a
// lock-free load plus an index).
func (o *SweepObserver) cell(w int) *sweepWorkerCell {
	if w < 0 {
		w = 0
	}
	if cp := o.cells.Load(); cp != nil && w < len(*cp) {
		return (*cp)[w]
	}
	o.grow.Lock()
	defer o.grow.Unlock()
	var cur []*sweepWorkerCell
	if cp := o.cells.Load(); cp != nil {
		cur = *cp
	}
	if w < len(cur) {
		return cur[w]
	}
	next := make([]*sweepWorkerCell, w+1)
	copy(next, cur)
	for i := len(cur); i <= w; i++ {
		next[i] = &sweepWorkerCell{}
	}
	o.cells.Store(&next)
	return next[w]
}

// CellStart implements sweep.Monitor.
func (o *SweepObserver) CellStart(cell, worker int) {
	if o == nil {
		return
	}
	o.inflight.Add(1)
}

// CellDone implements sweep.Monitor: it accumulates the cell's outcome in
// the owning worker's private cell (folded into the registry by Drain) and
// emits a cell_done event. There is deliberately no per-cell series: cell
// indices are unbounded label cardinality (a -exp all run has hundreds),
// and per-cell timings are already captured exactly in the run manifest
// via sweep.Timing.
func (o *SweepObserver) CellDone(cell, worker int, d time.Duration, err error) {
	if o == nil {
		return
	}
	o.inflight.Add(-1)
	c := o.cell(worker)
	c.completed++
	if err != nil {
		c.errors++
	}
	secs := d.Seconds()
	c.secSum += secs
	i := 0
	for i < len(sweepCellBounds) && secs > sweepCellBounds[i] {
		i++
	}
	c.buckets[i]++
	c.busyMs += uint64(d.Milliseconds())
	if o.log == nil {
		// Without a sink the event fields would be built only to be
		// discarded; skipping keeps the no-log CellDone allocation-free
		// (pinned by TestSweepObserverCellDoneAllocs).
		return
	}
	fields := map[string]any{
		"cell": cell, "worker": worker, "seconds": secs,
	}
	for i := 0; i+1 < len(o.labels); i += 2 {
		fields[o.labels[i]] = o.labels[i+1]
	}
	if err != nil {
		fields["error"] = err.Error()
	}
	o.log.Emit("cell_done", fields)
}

// Drain folds every worker's private accumulator into the registry and
// resets the accumulators, so an observer reused across sweeps publishes
// each sweep's cells exactly once. Call it after the sweep joins (no
// CellDone may be concurrent with Drain); it is cheap and idempotent
// between sweeps — a drained observer drains to zero.
func (o *SweepObserver) Drain() {
	if o == nil {
		return
	}
	cp := o.cells.Load()
	if cp == nil {
		return
	}
	for w, c := range *cp {
		if c.completed == 0 && c.errors == 0 {
			continue
		}
		o.completed.Add(c.completed)
		o.errors.Add(c.errors)
		o.seconds.merge(c.buckets[:], c.completed, c.secSum)
		o.reg.Counter(MetricSweepWorkerMs, "per-worker busy time in milliseconds",
			append([]string{"worker", strconv.Itoa(w)}, o.labels...)...).Add(c.busyMs)
		*c = sweepWorkerCell{}
	}
}

// CellRetry implements sweep.RetryMonitor: a failed attempt the engine is
// about to re-run. CellDone still fires exactly once per cell with the
// final outcome; retries are visible only here.
func (o *SweepObserver) CellRetry(cell, attempt int, err error) {
	if o == nil {
		return
	}
	o.retries.Inc()
	fields := map[string]any{"cell": cell, "attempt": attempt}
	for i := 0; i+1 < len(o.labels); i += 2 {
		fields[o.labels[i]] = o.labels[i+1]
	}
	if err != nil {
		fields["error"] = err.Error()
	}
	o.log.Emit("cell_retry", fields)
}

// PipelineMetrics aggregates simulator cycle samples into registry
// instruments. Occupancy-style quantities are recorded as histogram
// observations (so sweeps over many concurrent cells aggregate sensibly);
// squash/recovery activity accumulates via per-sample deltas.
type PipelineMetrics struct {
	samples     *Counter
	rasDepth    *Histogram
	ruu         *Histogram
	fetchq      *Histogram
	livePaths   *Histogram
	checkpoints *Histogram
	squashes    *Counter
	recoveries  *Counter
	pdHits      *Counter
	pdFallbacks *Counter
	ovSpills    *Counter
	ovReuses    *Counter
	blkHits     *Counter
	blkBuilds   *Counter
	blkInvals   *Counter
}

// NewPipelineMetrics registers the pipeline instrument set. A nil registry
// yields a nil collector whose Observe no-ops.
func NewPipelineMetrics(reg *Registry) *PipelineMetrics {
	if reg == nil {
		return nil
	}
	occ := []float64{0, 1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128}
	return &PipelineMetrics{
		samples:  reg.Counter(MetricSamples, "pipeline cycle samples recorded"),
		rasDepth: reg.Histogram(MetricRASDepth, "sampled return-address-stack depth", occ),
		ruu:      reg.Histogram(MetricRUUOcc, "sampled RUU (instruction window) occupancy", occ),
		fetchq:   reg.Histogram(MetricFetchQOcc, "sampled fetch-queue occupancy", occ),
		livePaths: reg.Histogram(MetricLivePaths, "sampled live fetch/execution paths",
			[]float64{1, 2, 3, 4, 6, 8, 12, 16}),
		checkpoints: reg.Histogram(MetricCheckpoints, "sampled in-flight RAS checkpoints", occ),
		squashes:    reg.Counter(MetricSquashes, "RUU entries squashed (sampled deltas)"),
		recoveries:  reg.Counter(MetricRecoveries, "branch-misprediction recoveries (sampled deltas)"),
		pdHits: reg.Counter(MetricPredecodeHits,
			"fetches served from the predecoded instruction plane (sampled deltas)"),
		pdFallbacks: reg.Counter(MetricPredecodeFallbacks,
			"fetches decoded from memory instead of the plane (sampled deltas)"),
		ovSpills: reg.Counter(MetricOverlaySpills,
			"wrong-path overlay inline-slot overflows into the spill table (sampled deltas)"),
		ovReuses: reg.Counter(MetricOverlayReuses,
			"wrong-path overlays served from the pool instead of allocated (sampled deltas)"),
		blkHits: reg.Counter(MetricBlockHits,
			"basic-block dispatches served from the plane's block table (sampled deltas)"),
		blkBuilds: reg.Counter(MetricBlockBuilds,
			"basic-block descriptor builds (first entries per machine, sampled deltas)"),
		blkInvals: reg.Counter(MetricBlockInvalidations,
			"code-region invalidations gating block and predecode dispatch (sampled deltas)"),
	}
}

// AttribMetrics publishes the misprediction-attribution layer's results:
// per-cause mispredict counters, per-stage cycle counters, and the
// repair-latency/squash-depth histograms its callbacks feed live. Like
// the other collectors it takes plain values, so the pipeline package
// stays import-free of telemetry (the attributor exposes callbacks; the
// CLI connects them here).
type AttribMetrics struct {
	reg           *Registry
	labels        []string
	events        *Counter
	repairLatency *Histogram
	squashDepth   *Histogram
}

// NewAttribMetrics registers the attribution instrument set under the
// given constant labels (e.g. "exp", "t3"). A nil registry yields a nil
// collector whose methods no-op.
func NewAttribMetrics(reg *Registry, labels ...string) *AttribMetrics {
	if reg == nil {
		return nil
	}
	return &AttribMetrics{
		reg:    reg,
		labels: labels,
		events: reg.Counter(MetricTraceEvents, "pipeline trace events recorded", labels...),
		repairLatency: reg.Histogram(MetricTraceRepairLatency,
			"cycles from a recovering instruction's fetch to its resolution",
			[]float64{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}, labels...),
		squashDepth: reg.Histogram(MetricTraceSquashDepth,
			"RUU entries plus fetch slots squashed per recovery",
			[]float64{0, 1, 2, 4, 8, 16, 32, 64, 128}, labels...),
	}
}

// ObserveRepairLatency records one recovery's repair latency (wire to
// pipeline.Attributor.OnRepairLatency).
func (a *AttribMetrics) ObserveRepairLatency(cycles uint64) {
	if a == nil {
		return
	}
	a.repairLatency.Observe(float64(cycles))
}

// ObserveSquashBurst records one recovery's squash depth (wire to
// pipeline.Attributor.OnSquashBurst).
func (a *AttribMetrics) ObserveSquashBurst(entries uint64) {
	if a == nil {
		return
	}
	a.squashDepth.Observe(float64(entries))
}

// AddCause accumulates attributed return mispredictions for one cause.
func (a *AttribMetrics) AddCause(cause string, n uint64) {
	if a == nil || n == 0 {
		return
	}
	a.reg.Counter(MetricAttribMispredicts, "return mispredictions by attributed cause",
		append([]string{"cause", cause}, a.labels...)...).Add(n)
}

// AddStage accumulates committed-instruction cycles for one pipeline
// stage interval.
func (a *AttribMetrics) AddStage(stage string, cycles uint64) {
	if a == nil || cycles == 0 {
		return
	}
	a.reg.Counter(MetricAttribStageCycles, "committed-instruction cycles by pipeline stage",
		append([]string{"stage", stage}, a.labels...)...).Add(cycles)
}

// AddEvents accumulates recorded trace events.
func (a *AttribMetrics) AddEvents(n uint64) {
	if a == nil || n == 0 {
		return
	}
	a.events.Add(n)
}

// Observe records one cycle sample. The argument list mirrors
// pipeline.Sample field-by-field so this package needs no simulator
// import.
func (p *PipelineMetrics) Observe(ruuOcc, fetchqOcc, livePaths, rasDepth, checkpointsLive int,
	newSquashed, newRecoveries, newPredecodeHits, newPredecodeFallbacks,
	newOverlaySpills, newOverlayReuses,
	newBlockHits, newBlockBuilds, newBlockInvalidations uint64) {
	if p == nil {
		return
	}
	p.samples.Inc()
	p.ruu.ObserveInt(ruuOcc)
	p.fetchq.ObserveInt(fetchqOcc)
	p.livePaths.ObserveInt(livePaths)
	p.rasDepth.ObserveInt(rasDepth)
	p.checkpoints.ObserveInt(checkpointsLive)
	p.squashes.Add(newSquashed)
	p.recoveries.Add(newRecoveries)
	p.pdHits.Add(newPredecodeHits)
	p.pdFallbacks.Add(newPredecodeFallbacks)
	p.ovSpills.Add(newOverlaySpills)
	p.ovReuses.Add(newOverlayReuses)
	p.blkHits.Add(newBlockHits)
	p.blkBuilds.Add(newBlockBuilds)
	p.blkInvals.Add(newBlockInvalidations)
}

// StoreMetrics feeds content-addressed result-store activity into a
// registry. Construction registers every family eagerly — an all-hit warm
// run must still expose retstack_store_misses_total = 0, so promcheck
// -require can assert the schema regardless of traffic. The struct
// satisfies resultstore.Observer's shape via the Observer method, keeping
// this package dependency-free.
type StoreMetrics struct {
	hits   *Counter
	misses *Counter
	puts   *Counter
	shared *Counter
	gets   *Histogram
	putsH  *Histogram
}

// NewStoreMetrics registers the retstack_store_* families on reg. A nil
// registry yields a nil observer, which is safe to call.
func NewStoreMetrics(reg *Registry) *StoreMetrics {
	if reg == nil {
		return nil
	}
	lat := []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}
	return &StoreMetrics{
		hits:   reg.Counter(MetricStoreHits, "result-store lookups answered from cache"),
		misses: reg.Counter(MetricStoreMisses, "result-store lookups that required simulation"),
		puts:   reg.Counter(MetricStorePuts, "cell results persisted to the store"),
		shared: reg.Counter(MetricStoreShared, "callers that joined another caller's in-flight simulation"),
		gets:   reg.Histogram(MetricStoreGetSeconds, "result-store lookup latency", lat),
		putsH:  reg.Histogram(MetricStorePutSeconds, "result-store persist latency (includes fsync)", lat),
	}
}

// ObserveGet records one lookup by outcome.
func (m *StoreMetrics) ObserveGet(hit bool, seconds float64) {
	if m == nil {
		return
	}
	if hit {
		m.hits.Inc()
	} else {
		m.misses.Inc()
	}
	m.gets.Observe(seconds)
}

// ObservePut records one persisted record.
func (m *StoreMetrics) ObservePut(seconds float64) {
	if m == nil {
		return
	}
	m.puts.Inc()
	m.putsH.Observe(seconds)
}

// ObserveShared records one caller sharing an in-flight computation.
func (m *StoreMetrics) ObserveShared() {
	if m == nil {
		return
	}
	m.shared.Inc()
}

// ServerMetrics feeds rasserve's campaign-queue lifecycle and health
// into a registry. Construction registers every family eagerly — a
// freshly booted server with an empty queue must still expose
// retstack_queue_recovered_total = 0 and retstack_server_degraded = 0,
// so promcheck -require can assert the schema before any campaign runs.
type ServerMetrics struct {
	depth     *Gauge
	recovered *Counter
	requeued  *Counter
	degraded  *Gauge
}

// NewServerMetrics registers the queue/health families on reg. A nil
// registry yields a nil collector, which is safe to call.
func NewServerMetrics(reg *Registry) *ServerMetrics {
	if reg == nil {
		return nil
	}
	return &ServerMetrics{
		depth: reg.Gauge(MetricQueueDepth,
			"campaigns submitted but not yet terminal"),
		recovered: reg.Counter(MetricQueueRecovered,
			"non-terminal campaigns re-adopted from the campaign log at boot"),
		requeued: reg.Counter(MetricQueueRequeued,
			"campaigns placed back on the queue for another attempt"),
		degraded: reg.Gauge(MetricServerDegraded,
			"1 when the result store is lost to an I/O fault and the server computes without caching"),
	}
}

// QueueDepth moves the queue-depth gauge by d.
func (m *ServerMetrics) QueueDepth(d int64) {
	if m == nil {
		return
	}
	m.depth.Add(d)
}

// CampaignRecovered records one campaign re-adopted from the log.
func (m *ServerMetrics) CampaignRecovered() {
	if m == nil {
		return
	}
	m.recovered.Inc()
}

// CampaignRequeued records one campaign going back on the queue.
func (m *ServerMetrics) CampaignRequeued() {
	if m == nil {
		return
	}
	m.requeued.Inc()
}

// SetDegraded flips the degraded gauge.
func (m *ServerMetrics) SetDegraded(v bool) {
	if m == nil {
		return
	}
	if v {
		m.degraded.Set(1)
	} else {
		m.degraded.Set(0)
	}
}
