package telemetry

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

// TestSinkSetFlushesExactlyOnce is the regression test for the rasbench
// drain path: however many exit paths race to Flush (normal completion,
// SIGINT drain, fatal), every registered sink must flush exactly once.
func TestSinkSetFlushesExactlyOnce(t *testing.T) {
	s := NewSinkSet()
	counts := make([]int, 3)
	var order []string
	for i, name := range []string{"metrics", "events", "manifest"} {
		i, name := i, name
		s.Register(name, func() error {
			counts[i]++
			order = append(order, name)
			return nil
		})
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, e := range s.Flush() {
				t.Error(e)
			}
		}()
	}
	wg.Wait()

	for i, n := range counts {
		if n != 1 {
			t.Errorf("sink %d flushed %d times, want exactly 1", i, n)
		}
	}
	if strings.Join(order, ",") != "metrics,events,manifest" {
		t.Errorf("flush order %v, want registration order", order)
	}
	if !s.Flushed() {
		t.Error("Flushed() false after Flush")
	}
	if errs := s.Flush(); errs != nil {
		t.Errorf("second Flush returned %v, want nil no-op", errs)
	}
}

// TestSinkSetRunsEverySinkOnError: one sink failing must not stop the
// ones after it — an interrupted run still persists everything it can.
func TestSinkSetRunsEverySinkOnError(t *testing.T) {
	s := NewSinkSet()
	var ran []string
	boom := errors.New("disk full")
	s.Register("a", func() error { ran = append(ran, "a"); return nil })
	s.Register("b", func() error { ran = append(ran, "b"); return boom })
	s.Register("c", func() error { ran = append(ran, "c"); return nil })

	errs := s.Flush()
	if len(ran) != 3 {
		t.Fatalf("ran %v, want all three sinks", ran)
	}
	if len(errs) != 1 || errs[0].Name != "b" || !errors.Is(errs[0].Err, boom) {
		t.Fatalf("errors %v, want exactly b's failure", errs)
	}
	if !strings.Contains(errs[0].Error(), "b:") {
		t.Errorf("SinkError renders %q, want the sink name", errs[0].Error())
	}
}

func TestSinkSetNilSafety(t *testing.T) {
	var s *SinkSet
	s.Register("x", func() error { return nil }) // must not panic
	if errs := s.Flush(); errs != nil {
		t.Errorf("nil set Flush returned %v", errs)
	}
	if s.Flushed() {
		t.Error("nil set reports flushed")
	}

	set := NewSinkSet()
	set.Register("skipped", nil) // nil flush func ignored
	if errs := set.Flush(); errs != nil {
		t.Errorf("Flush with nil-func registration returned %v", errs)
	}
}

func TestSinkSetRegisterAfterFlushPanics(t *testing.T) {
	s := NewSinkSet()
	s.Flush()
	defer func() {
		if recover() == nil {
			t.Error("Register after Flush did not panic")
		}
	}()
	s.Register("late", func() error { return nil })
}
