// Package telemetry is the repository's zero-dependency observability
// layer: a metrics registry (counters, gauges, fixed-bucket histograms)
// with Prometheus-style text exposition, a JSONL structured event log, and
// run manifests that make every results artifact traceable to the exact
// configuration that produced it.
//
// The package is built for simulator hot paths: every instrument method is
// a single atomic operation, and every instrument (and the registry
// itself) is nil-safe, so disabled telemetry costs one nil check and the
// instrumented code needs no conditionals:
//
//	var reg *telemetry.Registry // nil: telemetry off
//	c := reg.Counter("retstack_squashes_total", "RUU entries squashed")
//	c.Inc() // no-op when reg was nil
//
// Telemetry is strictly observational. Attaching any of it to a simulation
// or a sweep must never change simulated results; the experiment tables
// stay byte-identical with it on or off.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named metric families. The zero value is not usable; a
// nil *Registry is: every constructor on it returns a nil instrument whose
// methods no-op.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family groups every labeled child of one metric name under a shared
// HELP/TYPE declaration.
type family struct {
	name     string
	help     string
	typ      string
	children map[string]any // rendered label string -> instrument
	order    []string       // label strings in creation order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// lookup returns (creating if needed) the instrument for name+labels,
// where make builds a fresh instrument. It panics if name exists with a
// different type: that is a programming error, not a runtime condition.
func (r *Registry) lookup(name, help, typ string, labels []string, mk func() any) any {
	if len(labels)%2 != 0 {
		panic("telemetry: labels must be key/value pairs")
	}
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, children: map[string]any{}}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	if c, ok := f.children[ls]; ok {
		return c
	}
	c := mk()
	f.children[ls] = c
	f.order = append(f.order, ls)
	return c
}

// renderLabels formats key/value pairs as a stable `{k="v",...}` string
// (sorted by key; empty for no labels).
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	s := "{"
	for i, p := range pairs {
		if i > 0 {
			s += ","
		}
		s += p.k + `="` + escapeLabel(p.v) + `"`
	}
	return s + "}"
}

func escapeLabel(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Uint64 }

// Counter returns the counter for name+labels, creating it on first use.
// Labels are alternating key/value pairs. Nil registry returns nil.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, "counter", labels, func() any { return &Counter{} }).(*Counter)
}

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Gauge returns the gauge for name+labels, creating it on first use. Nil
// registry returns nil.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, "gauge", labels, func() any { return &Gauge{} }).(*Gauge)
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (which may be negative). No-op on a nil gauge.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed cumulative buckets, Prometheus
// style: bucket i counts observations <= Buckets[i], with an implicit
// +Inf bucket at the end.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// Histogram returns the histogram for name+labels, creating it on first
// use with the given ascending upper bounds. Nil registry returns nil.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: %s bucket bounds not ascending", name))
		}
	}
	return r.lookup(name, help, "histogram", labels, func() any {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	}).(*Histogram)
}

// Observe records one observation. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// merge folds pre-aggregated observations in: counts holds per-bucket
// observation counts aligned with h's buckets (len(bounds)+1, +Inf last),
// count their total, sum their value sum. Shorter counts slices fold what
// they have; extra buckets are ignored. Used by observers that accumulate
// in worker-private cells and publish once per sweep.
func (h *Histogram) merge(counts []uint64, count uint64, sum float64) {
	if h == nil || count == 0 {
		return
	}
	for i := 0; i < len(counts) && i < len(h.counts); i++ {
		if counts[i] != 0 {
			h.counts[i].Add(counts[i])
		}
	}
	h.count.Add(count)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + sum)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// ObserveInt records an integer observation (occupancies, depths).
func (h *Histogram) ObserveInt(v int) { h.Observe(float64(v)) }
