package telemetry

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestSweepObserverCellDoneAllocs pins the cell hot path: once a worker's
// accumulator exists, CellDone without an event sink is pure arithmetic on
// worker-private memory — zero allocations, zero shared mutable state
// beyond the inflight gauge.
func TestSweepObserverCellDoneAllocs(t *testing.T) {
	obs := NewSweepObserver(NewRegistry(), nil, "exp", "t3")
	// First sight of a worker grows the cell table; warm it first.
	obs.CellStart(0, 3)
	obs.CellDone(0, 3, time.Millisecond, nil)

	allocs := testing.AllocsPerRun(100, func() {
		obs.CellStart(1, 3)
		obs.CellDone(1, 3, 2*time.Millisecond, nil)
	})
	if allocs != 0 {
		t.Errorf("warm CellDone allocated %.1f objects/op, want 0", allocs)
	}
}

// TestSweepObserverDrain: per-worker accumulators publish to the registry
// only at Drain, exactly once, with a per-worker busy-time series; the
// schema is present (at zero) before any fold, and a second Drain with no
// new cells adds nothing.
func TestSweepObserverDrain(t *testing.T) {
	reg := NewRegistry()
	obs := NewSweepObserver(reg, nil, "exp", "t3")

	expo := func() string {
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	// Eager registration: the families exist at zero before any cell.
	fresh := expo()
	for _, fam := range []string{MetricSweepCompleted, MetricSweepErrors, MetricSweepCellSeconds} {
		if !strings.Contains(fresh, fam) {
			t.Errorf("fresh exposition missing %s:\n%s", fam, fresh)
		}
	}

	// Two workers finish three cells; one errors.
	obs.CellStart(0, 0)
	obs.CellDone(0, 0, 100*time.Millisecond, nil)
	obs.CellStart(1, 1)
	obs.CellDone(1, 1, 200*time.Millisecond, nil)
	obs.CellStart(2, 1)
	obs.CellDone(2, 1, 50*time.Millisecond, errors.New("boom"))

	// Before Drain the fold targets still read zero — the accumulators
	// are worker-private until the sweep joins.
	if got := expo(); !strings.Contains(got, MetricSweepCompleted+`{exp="t3"} 0`) {
		t.Errorf("completed leaked before Drain:\n%s", got)
	}

	obs.Drain()
	got := expo()
	for _, want := range []string{
		MetricSweepCompleted + `{exp="t3"} 3`,
		MetricSweepErrors + `{exp="t3"} 1`,
		MetricSweepCellSeconds + `_count{exp="t3"} 3`,
		MetricSweepWorkerMs + `{exp="t3",worker="0"} 100`,
		MetricSweepWorkerMs + `{exp="t3",worker="1"} 250`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("post-Drain exposition missing %q:\n%s", want, got)
		}
	}

	// Idempotent: draining again without new cells publishes nothing new.
	obs.Drain()
	if again := expo(); again != got {
		t.Errorf("second Drain changed the exposition:\ngot:\n%s\nwant:\n%s", again, got)
	}

	// A second sweep through the same observer folds on top.
	obs.CellStart(3, 0)
	obs.CellDone(3, 0, 10*time.Millisecond, nil)
	obs.Drain()
	if got := expo(); !strings.Contains(got, MetricSweepCompleted+`{exp="t3"} 4`) {
		t.Errorf("second sweep did not accumulate:\n%s", got)
	}
}

// TestSweepObserverInflightLive: the inflight gauge is the one shared
// quantity that must move in real time, not at Drain.
func TestSweepObserverInflightLive(t *testing.T) {
	reg := NewRegistry()
	obs := NewSweepObserver(reg, nil)
	obs.CellStart(0, 0)
	obs.CellStart(1, 1)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), MetricSweepInflight+" 2") {
		t.Errorf("inflight gauge not live:\n%s", b.String())
	}
	obs.CellDone(0, 0, time.Millisecond, nil)
	obs.CellDone(1, 1, time.Millisecond, nil)
}
