package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// Manifest records everything needed to trace a results artifact
// (EXPERIMENTS.md rows, CSV dumps) back to the run that produced it: the
// resolved machine configuration and its hash, the instruction budget,
// the environment, and per-cell wall-clock timings.
type Manifest struct {
	Tool      string   `json:"tool"`
	Args      []string `json:"args,omitempty"`
	GoVersion string   `json:"go_version"`
	OS        string   `json:"os"`
	Arch      string   `json:"arch"`

	Start       time.Time `json:"start"`
	WallSeconds float64   `json:"wall_seconds"`

	// Run parameters that determine the numbers.
	InstBudget uint64   `json:"inst_budget"`
	Warmup     uint64   `json:"warmup,omitempty"`
	Workloads  []string `json:"workloads,omitempty"`
	// Parallel is recorded for performance context only: results are
	// byte-identical at any worker count.
	Parallel int `json:"parallel,omitempty"`
	// ExperimentIDs is the experiment set the run was asked to produce
	// (the resolved -exp selection), which determines which tables exist.
	ExperimentIDs []string `json:"experiment_ids,omitempty"`

	// Config is the resolved machine configuration (Config.Describe).
	Config string `json:"config"`
	// ConfigHash is a sha256 over the result-determining fields (config,
	// budget, warmup, workload set, experiment set) — two runs with equal
	// hashes produce identical tables.
	ConfigHash string `json:"config_hash"`

	// Status is how the run ended: "completed", or "interrupted" when a
	// signal canceled the sweep and the partial state was flushed. It is
	// provenance, not a result-determining field, so it is outside
	// ConfigHash.
	Status string `json:"status,omitempty"`
	// Resume records crash-safe-resume provenance when -resume spliced
	// journaled cells into this run, chaining back to every prior run
	// that appended to the journal.
	Resume *ResumeRecord `json:"resume,omitempty"`

	// Trace records event-trace capture provenance when -trace-out was
	// set. Tracing is strictly observational (tables stay byte-identical),
	// so like Status it lives outside ConfigHash.
	Trace *TraceRecord `json:"trace,omitempty"`

	// Store records result-store provenance when -store backed this run:
	// where the cache lives, the scope hash its keys were derived under,
	// and the hit/miss/put/shared counts. Cached splices are byte-identical
	// to simulation, so like Resume it lives outside ConfigHash.
	Store *StoreRecord `json:"store,omitempty"`

	Experiments []ExperimentRecord `json:"experiments,omitempty"`
}

// ResumeRecord traces a resumed run back to the journal that fed it.
// PriorRuns carries the journal's run stamps as "tool@start" strings, so
// the manifest alone reconstructs the full chain of partial runs that
// produced the artifact.
type ResumeRecord struct {
	Journal       string   `json:"journal"`
	PriorRuns     []string `json:"prior_runs,omitempty"`
	CellsReplayed int      `json:"cells_replayed"`
}

// TraceRecord is the manifest's trace-capture provenance: where the
// per-cell trace files went, the causal ring capacity, and the aggregate
// event/attribution counts — enough to tell whether a trace directory
// belongs to this run's tables.
type TraceRecord struct {
	Dir        string   `json:"dir"`
	Buf        int      `json:"buf"`
	Files      []string `json:"files,omitempty"`
	Events     uint64   `json:"events"`
	Attributed uint64   `json:"attributed"`
}

// StoreRecord is the manifest's result-store provenance: which store
// directory served the run, the scope hash the cell keys were derived
// under, and how much of the run came from cache. A warm rerun shows
// Hits == cells and Misses == 0; CI's cache-smoke job asserts exactly
// that.
type StoreRecord struct {
	Dir    string `json:"dir"`
	Scope  string `json:"scope"`
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Puts   uint64 `json:"puts"`
	Shared uint64 `json:"shared,omitempty"`
}

// ExperimentRecord is one experiment's timing within a run.
type ExperimentRecord struct {
	ID          string       `json:"id"`
	Title       string       `json:"title,omitempty"`
	WallSeconds float64      `json:"wall_seconds"`
	Cells       []CellRecord `json:"cells,omitempty"`
}

// CellRecord is one sweep cell's accounting.
type CellRecord struct {
	Cell    int     `json:"cell"`
	Worker  int     `json:"worker"`
	Seconds float64 `json:"seconds"`
	Error   bool    `json:"error,omitempty"`
}

// NewManifest starts a manifest for the named tool, stamping the
// environment and start time.
func NewManifest(tool string, args []string) *Manifest {
	return &Manifest{
		Tool:      tool,
		Args:      args,
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		Start:     time.Now().UTC(),
	}
}

// ComputeHash fills ConfigHash from the result-determining fields and
// returns it. Call after Config, InstBudget, Warmup, Workloads, and
// ExperimentIDs are final.
func (m *Manifest) ComputeHash() string {
	h := sha256.New()
	fmt.Fprintf(h, "config:%s\ninsts:%d\nwarmup:%d\nworkloads:%s\nexperiments:%s\n",
		m.Config, m.InstBudget, m.Warmup, strings.Join(m.Workloads, ","),
		strings.Join(m.ExperimentIDs, ","))
	m.ConfigHash = hex.EncodeToString(h.Sum(nil))
	return m.ConfigHash
}

// Finish stamps the total wall clock relative to Start.
func (m *Manifest) Finish() { m.WallSeconds = time.Since(m.Start).Seconds() }

// WriteFile writes the manifest as indented JSON.
func (m *Manifest) WriteFile(path string) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Fields returns the manifest as event-log fields, so runs with an event
// log but no -manifest-out still record their provenance.
func (m *Manifest) Fields() map[string]any {
	return map[string]any{
		"go_version":  m.GoVersion,
		"os":          m.OS,
		"arch":        m.Arch,
		"inst_budget": m.InstBudget,
		"warmup":      m.Warmup,
		"workloads":   strings.Join(m.Workloads, ","),
		"parallel":    m.Parallel,
		"experiments": strings.Join(m.ExperimentIDs, ","),
		"config_hash": m.ConfigHash,
	}
}
