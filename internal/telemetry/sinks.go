package telemetry

import (
	"fmt"
	"sync"
)

// SinkSet coordinates end-of-run flushing for every observability sink a
// CLI opens (metrics dump, event log, journal, manifest, trace files).
// The CLIs have three exit paths — normal completion, signal-initiated
// drain, and fatal error — and historically each flushed its own ad-hoc
// subset, so a sink added to one path could silently miss another (the
// rasbench fatal() path used os.Exit and skipped every deferred Close).
// Registering sinks here and calling Flush on every exit path guarantees
// each sink flushes exactly once no matter which path runs first, or
// whether several race.
type SinkSet struct {
	mu      sync.Mutex
	sinks   []namedSink
	flushed bool
}

type namedSink struct {
	name  string
	flush func() error
}

// SinkError reports one sink's flush failure.
type SinkError struct {
	Name string
	Err  error
}

func (e SinkError) Error() string { return fmt.Sprintf("%s: %v", e.Name, e.Err) }

// NewSinkSet returns an empty set.
func NewSinkSet() *SinkSet { return &SinkSet{} }

// Register adds a sink. Flush order is registration order, so register
// dependent sinks after what they depend on (e.g. the manifest, whose
// fields other sinks may update, goes last). Registering after Flush has
// run panics: it would mean a sink that can never flush.
func (s *SinkSet) Register(name string, flush func() error) {
	if s == nil || flush == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.flushed {
		panic("telemetry: SinkSet.Register after Flush")
	}
	s.sinks = append(s.sinks, namedSink{name, flush})
}

// Flush runs every registered sink exactly once, in registration order,
// and returns the failures (every sink runs even when an earlier one
// fails). Later calls — from another exit path or another goroutine —
// are no-ops returning nil.
func (s *SinkSet) Flush() []SinkError {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.flushed {
		s.mu.Unlock()
		return nil
	}
	s.flushed = true
	sinks := s.sinks
	s.mu.Unlock()

	var errs []SinkError
	for _, sk := range sinks {
		if err := sk.flush(); err != nil {
			errs = append(errs, SinkError{sk.name, err})
		}
	}
	return errs
}

// Flushed reports whether Flush has already run.
func (s *SinkSet) Flushed() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushed
}
