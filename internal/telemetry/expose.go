package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, one HELP and one TYPE
// line per family, children in creation order. Output is deterministic
// for a fixed sequence of recorded values. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	// Snapshot the registration structures (family list, child order, and
	// instrument pointers) while holding the lock: Registry.lookup mutates
	// them concurrently when instruments register lazily mid-run (e.g. a
	// live /metrics scrape during a sweep). Instrument values are atomic,
	// so they are safe to read after unlocking.
	type child struct {
		labels string
		inst   any
	}
	type famSnap struct {
		name, help, typ string
		children        []child
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]famSnap, len(names))
	for i, name := range names {
		f := r.families[name]
		fs := famSnap{name: f.name, help: f.help, typ: f.typ,
			children: make([]child, len(f.order))}
		for j, ls := range f.order {
			fs.children[j] = child{labels: ls, inst: f.children[ls]}
		}
		fams[i] = fs
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, c := range f.children {
			switch m := c.inst.(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, c.labels, m.Value())
			case *Gauge:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, c.labels, m.Value())
			case *Histogram:
				writeHistogram(bw, f.name, c.labels, m)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders the cumulative bucket series plus _sum and
// _count for one labeled histogram child.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(labels, "le", le), cum)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
}

// withLabel appends one label pair to an already-rendered label string.
func withLabel(rendered, k, v string) string {
	pair := k + `="` + escapeLabel(v) + `"`
	if rendered == "" {
		return "{" + pair + "}"
	}
	return rendered[:len(rendered)-1] + "," + pair + "}"
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// DumpFile writes the exposition to a file (the CLIs' -metrics-out flag).
func (r *Registry) DumpFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
