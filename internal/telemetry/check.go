package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CheckExposition validates a Prometheus text exposition: every sample
// belongs to a family declared by exactly one # TYPE line, no family is
// declared twice, no series (name + label set) repeats, and every sample
// value parses as a number. It is the CI smoke check behind -metrics-out.
func CheckExposition(r io.Reader) error {
	_, err := CheckExpositionFamilies(r)
	return err
}

// CheckExpositionFamilies performs the same validation as CheckExposition
// and returns the declared families (family name → metric type), so
// callers can additionally require specific families to be present
// (promcheck -require).
func CheckExpositionFamilies(r io.Reader) (map[string]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	typed := map[string]string{} // family -> type
	seen := map[string]bool{}    // full series line key
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 4 && f[1] == "TYPE" {
				name, typ := f[2], f[3]
				if _, dup := typed[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate # TYPE for %s", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q for %s", lineNo, typ, name)
				}
				typed[name] = typ
			}
			continue
		}
		series, value, err := splitSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if value != "+Inf" && value != "-Inf" && value != "NaN" {
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				return nil, fmt.Errorf("line %d: sample value %q is not a number", lineNo, value)
			}
		}
		if seen[series] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, series)
		}
		seen[series] = true
		if fam := familyOf(seriesName(series), typed); fam == "" {
			return nil, fmt.Errorf("line %d: sample %s has no # TYPE declaration", lineNo, seriesName(series))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(typed) == 0 {
		return nil, fmt.Errorf("exposition declares no metrics")
	}
	return typed, nil
}

// splitSample separates "name{labels} value [timestamp]" into the series
// part and the value.
func splitSample(line string) (series, value string, err error) {
	end := strings.LastIndex(line, "}")
	rest := line
	if end >= 0 {
		series = line[:end+1]
		rest = strings.TrimSpace(line[end+1:])
	} else {
		i := strings.IndexAny(line, " \t")
		if i < 0 {
			return "", "", fmt.Errorf("sample %q has no value", line)
		}
		series = line[:i]
		rest = strings.TrimSpace(line[i:])
	}
	f := strings.Fields(rest)
	if len(f) < 1 || len(f) > 2 {
		return "", "", fmt.Errorf("sample %q is malformed", line)
	}
	return series, f[0], nil
}

func seriesName(series string) string {
	if i := strings.Index(series, "{"); i >= 0 {
		return series[:i]
	}
	return series
}

// familyOf resolves a sample name to its declared family, accounting for
// the histogram/summary suffixes.
func familyOf(name string, typed map[string]string) string {
	if _, ok := typed[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if t := typed[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return ""
}

// Samples parses a text exposition into series → value (the full
// `name{labels}` string keys the map). Malformed sample lines are errors;
// comment and blank lines are skipped. Unlike CheckExposition this does
// not require # TYPE declarations — it is the read side used for
// cross-checking counters against other artifacts (rastrace -reconcile).
func Samples(r io.Reader) (map[string]float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	out := map[string]float64{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		series, value, err := splitSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: sample value %q is not a number", lineNo, value)
		}
		out[series] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// CheckJSONL validates a JSON Lines stream: every non-empty line must be
// one JSON object.
func CheckJSONL(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo, records := 0, 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			return fmt.Errorf("line %d: not a JSON object: %v", lineNo, err)
		}
		records++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if records == 0 {
		return fmt.Errorf("event log holds no records")
	}
	return nil
}
