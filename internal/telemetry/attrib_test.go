package telemetry

import (
	"strings"
	"testing"
)

// TestAttribMetricsExposition: the attribution collector's counters and
// histograms land in the dump under the documented family names, with the
// cause/stage labels the reconciliation tooling keys on.
func TestAttribMetricsExposition(t *testing.T) {
	reg := NewRegistry()
	am := NewAttribMetrics(reg, "exp", "t3")
	am.AddEvents(1234)
	am.AddCause("wrongpath-pop", 7)
	am.AddCause("overflow-wrap", 2)
	am.AddCause("stale", 0) // zero counts register nothing
	am.AddStage("frontend", 900)
	am.AddStage("retire", 0)
	am.ObserveRepairLatency(12)
	am.ObserveSquashBurst(33)

	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	dump := out.String()
	for _, want := range []string{
		MetricTraceEvents + `{exp="t3"} 1234`,
		MetricAttribMispredicts + `{cause="wrongpath-pop",exp="t3"} 7`,
		MetricAttribMispredicts + `{cause="overflow-wrap",exp="t3"} 2`,
		MetricAttribStageCycles + `{exp="t3",stage="frontend"} 900`,
		MetricTraceRepairLatency + "_count",
		MetricTraceSquashDepth + "_count",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("exposition missing %q:\n%s", want, dump)
		}
	}
	if strings.Contains(dump, `cause="stale"`) {
		t.Error("zero-count cause registered a series")
	}
	if strings.Contains(dump, `stage="retire"`) {
		t.Error("zero-cycle stage registered a series")
	}

	// The dump must satisfy its own validator and declare every trace
	// family promcheck -require asks for in CI.
	families, err := CheckExpositionFamilies(strings.NewReader(dump))
	if err != nil {
		t.Fatalf("attribution exposition fails validation: %v", err)
	}
	for _, fam := range []string{
		MetricAttribMispredicts, MetricAttribStageCycles,
		MetricTraceEvents, MetricTraceRepairLatency, MetricTraceSquashDepth,
	} {
		if _, ok := families[fam]; !ok {
			t.Errorf("family %s not declared", fam)
		}
	}
}

// TestAttribMetricsNilSafety: a nil collector (no registry) must accept
// every call — that is what keeps an untraced run free of telemetry.
func TestAttribMetricsNilSafety(t *testing.T) {
	am := NewAttribMetrics(nil, "exp", "t3")
	if am != nil {
		t.Fatal("nil registry should yield a nil collector")
	}
	am.AddEvents(1)
	am.AddCause("wrongpath-pop", 1)
	am.AddStage("frontend", 1)
	am.ObserveRepairLatency(1)
	am.ObserveSquashBurst(1)
}

func TestSamples(t *testing.T) {
	in := `# HELP retstack_attrib_mispredicts_total doc
# TYPE retstack_attrib_mispredicts_total counter
retstack_attrib_mispredicts_total{cause="wrongpath-pop",exp="t3"} 7

retstack_trace_events_total 42
`
	got, err := Samples(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d samples, want 2: %v", len(got), got)
	}
	if got[`retstack_attrib_mispredicts_total{cause="wrongpath-pop",exp="t3"}`] != 7 {
		t.Errorf("labeled sample wrong: %v", got)
	}
	if got["retstack_trace_events_total"] != 42 {
		t.Errorf("bare sample wrong: %v", got)
	}
	if _, err := Samples(strings.NewReader("metric_without_value\n")); err == nil {
		t.Error("valueless sample accepted")
	}
	if _, err := Samples(strings.NewReader("metric nope\n")); err == nil {
		t.Error("non-numeric value accepted")
	}
}

func TestCheckExpositionFamilies(t *testing.T) {
	in := `# TYPE a_total counter
a_total 1
# TYPE b_depth histogram
b_depth_bucket{le="+Inf"} 1
b_depth_sum 3
b_depth_count 1
`
	fams, err := CheckExpositionFamilies(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if fams["a_total"] != "counter" || fams["b_depth"] != "histogram" {
		t.Fatalf("families %v", fams)
	}
	if _, err := CheckExpositionFamilies(strings.NewReader("undeclared 1\n")); err == nil {
		t.Error("sample without # TYPE accepted")
	}
}
