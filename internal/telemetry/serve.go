package telemetry

import (
	"net"
	"net/http"
	httppprof "net/http/pprof"
)

// Serve starts the live observability endpoint in the background: /metrics
// renders the registry's Prometheus exposition and /debug/pprof/* exposes
// the standard runtime profiles, so a long sweep can be profiled while it
// runs. It returns the bound address (useful with ":0") once the listener
// is up; the server lives until the process exits. A nil registry serves
// an empty exposition.
func Serve(addr string, reg *Registry) (net.Addr, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go http.Serve(ln, mux) //nolint:errcheck // best-effort debug endpoint
	return ln.Addr(), nil
}
