package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventLogJSONL(t *testing.T) {
	var b strings.Builder
	log := NewEventLog(&b, map[string]any{"run_id": "r1", "tool": "test"})
	log.Emit("start", nil)
	log.Emit("cell_done", map[string]any{"cell": 3, "seconds": 0.25})
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	for k, want := range map[string]any{"run_id": "r1", "event": "cell_done", "cell": 3.0} {
		if rec[k] != want {
			t.Errorf("rec[%q] = %v, want %v", k, rec[k], want)
		}
	}
	if _, ok := rec["ts"]; !ok {
		t.Error("record missing ts")
	}
	if err := CheckJSONL(strings.NewReader(b.String())); err != nil {
		t.Errorf("emitted log fails CheckJSONL: %v", err)
	}
}

func TestEventLogConcurrent(t *testing.T) {
	var b strings.Builder
	var mu sync.Mutex
	safe := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	})
	log := NewEventLog(safe, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				log.Emit("tick", map[string]any{"worker": w, "i": i})
			}
		}(w)
	}
	wg.Wait()
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if err := CheckJSONL(strings.NewReader(b.String())); err != nil {
		t.Fatalf("concurrent log corrupt: %v", err)
	}
	if n := strings.Count(b.String(), "\n"); n != 8*200 {
		t.Errorf("got %d records, want %d", n, 8*200)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestCheckJSONLRejectsGarbage(t *testing.T) {
	for _, text := range []string{"", "not json\n", `{"ok":1}` + "\n[1,2]\n"} {
		if err := CheckJSONL(strings.NewReader(text)); err == nil {
			t.Errorf("CheckJSONL(%q) passed, want error", text)
		}
	}
}

func TestManifestHashAndRoundTrip(t *testing.T) {
	m := NewManifest("rasbench", []string{"-exp", "t1"})
	m.Config = "Fetch width 4"
	m.InstBudget = 20000
	m.Workloads = []string{"go", "li"}
	h1 := m.ComputeHash()

	same := NewManifest("rasbench", nil)
	same.Config, same.InstBudget, same.Workloads = m.Config, m.InstBudget, m.Workloads
	same.ExperimentIDs = m.ExperimentIDs
	if h2 := same.ComputeHash(); h2 != h1 {
		t.Errorf("equal settings hash differently: %s vs %s", h1, h2)
	}
	same.InstBudget++
	if h3 := same.ComputeHash(); h3 == h1 {
		t.Error("different budgets must hash differently")
	}
	same.InstBudget--
	same.ExperimentIDs = []string{"t3"}
	if h4 := same.ComputeHash(); h4 == h1 {
		t.Error("different experiment sets must hash differently")
	}

	m.Experiments = append(m.Experiments, ExperimentRecord{
		ID: "t1", WallSeconds: 0.5,
		Cells: []CellRecord{{Cell: 0, Worker: 1, Seconds: 0.5}},
	})
	m.Finish()
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("manifest not JSON: %v", err)
	}
	if back.ConfigHash != h1 || len(back.Experiments) != 1 || back.Experiments[0].Cells[0].Worker != 1 {
		t.Errorf("round trip lost fields: %+v", back)
	}
	if back.Start.After(time.Now().Add(time.Minute)) {
		t.Error("implausible start time")
	}
}
