package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// EventLog writes structured events as JSON Lines: one self-contained
// object per line, run-scoped base fields merged into every record. A nil
// *EventLog no-ops everywhere, so call sites need no conditionals.
//
// Event records carry a wall-clock timestamp; the log is an operational
// artifact, not part of the deterministic experiment output.
type EventLog struct {
	mu   sync.Mutex
	w    *bufio.Writer
	c    io.Closer // owned file, if any
	base map[string]any
	err  error
}

// NewEventLog wraps a writer. base fields (run id, tool name, …) are
// repeated on every record; it may be nil.
func NewEventLog(w io.Writer, base map[string]any) *EventLog {
	return &EventLog{w: bufio.NewWriter(w), base: base}
}

// CreateEventLog opens (truncating) a JSONL file owned by the log; Close
// flushes and closes it.
func CreateEventLog(path string, base map[string]any) (*EventLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	l := NewEventLog(f, base)
	l.c = f
	return l, nil
}

// Emit writes one event record. The "event" name and a "ts" timestamp are
// added to the base and per-event fields; per-event fields win collisions.
// Safe for concurrent use; no-op on a nil log.
func (l *EventLog) Emit(event string, fields map[string]any) {
	if l == nil {
		return
	}
	rec := make(map[string]any, len(l.base)+len(fields)+2)
	for k, v := range l.base {
		rec[k] = v
	}
	rec["event"] = event
	rec["ts"] = time.Now().UTC().Format(time.RFC3339Nano)
	for k, v := range fields {
		rec[k] = v
	}
	b, err := json.Marshal(rec) // map keys marshal sorted: stable field order
	l.mu.Lock()
	defer l.mu.Unlock()
	if err != nil {
		if l.err == nil {
			l.err = err
		}
		return
	}
	if _, err := l.w.Write(append(b, '\n')); err != nil && l.err == nil {
		l.err = err
	}
}

// Err returns the first write or encoding error (nil for a nil log).
func (l *EventLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close flushes and, if the log owns its file, closes it. Nil-safe.
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil && l.err == nil {
		l.err = err
	}
	if l.c != nil {
		if err := l.c.Close(); err != nil && l.err == nil {
			l.err = err
		}
		l.c = nil
	}
	return l.err
}
