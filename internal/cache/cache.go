// Package cache models the memory hierarchy: set-associative write-back
// caches with true-LRU replacement composed into a conventional two-level
// organization (split L1 instruction/data caches over a unified L2 over
// main memory).
//
// The timing model is access-latency based: Access returns the number of
// cycles the reference takes, accumulating each level's hit latency down
// to the level that serves the line. Write-backs of dirty victims are
// performed for state correctness and counted, but are assumed buffered
// (they add no latency) — the usual write-buffer simplification.
package cache

import "fmt"

// Level is anything that can serve a memory reference: a cache or memory.
type Level interface {
	// Access performs a reference to addr, returning its latency in cycles.
	Access(addr uint32, write bool) int
	// Name identifies the level in statistics output.
	Name() string
}

// MainMemory is the fixed-latency DRAM at the bottom of the hierarchy.
type MainMemory struct {
	Latency  int
	Accesses uint64
}

// NewMainMemory returns memory with the given access latency.
func NewMainMemory(latency int) *MainMemory { return &MainMemory{Latency: latency} }

// Access implements Level.
func (m *MainMemory) Access(addr uint32, write bool) int {
	m.Accesses++
	return m.Latency
}

// Name implements Level.
func (m *MainMemory) Name() string { return "mem" }

// Stats holds per-cache reference counts.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	WriteBacks uint64
}

// MissRate returns misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is one set-associative write-back, write-allocate cache level.
type Cache struct {
	name       string
	sets       int
	ways       int
	lineShift  uint
	hitLatency int
	next       Level

	tags  []uint32 // line address (addr >> lineShift); valid bit packed below
	valid []bool
	dirty []bool
	stamp []uint64
	clock uint64

	stats Stats
}

// Config describes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	LineBytes  int
	HitLatency int
}

// New builds a cache over the given next level.
func New(cfg Config, next Level) *Cache {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("cache: line size must be a power of two")
	}
	if cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		panic("cache: size and associativity must be positive")
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	if lines == 0 || lines%cfg.Ways != 0 {
		panic("cache: size/line/ways geometry does not divide evenly")
	}
	sets := lines / cfg.Ways
	if sets&(sets-1) != 0 {
		panic("cache: set count must be a power of two")
	}
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	n := sets * cfg.Ways
	return &Cache{
		name:       cfg.Name,
		sets:       sets,
		ways:       cfg.Ways,
		lineShift:  shift,
		hitLatency: cfg.HitLatency,
		next:       next,
		tags:       make([]uint32, n),
		valid:      make([]bool, n),
		dirty:      make([]bool, n),
		stamp:      make([]uint64, n),
	}
}

// Name implements Level.
func (c *Cache) Name() string { return c.name }

// Stats returns the cache's counters.
func (c *Cache) Stats() Stats { return c.stats }

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return 1 << c.lineShift }

// Probe reports whether addr would hit, without touching cache state or
// statistics (used by the pipeline's MSHR bookkeeping).
func (c *Cache) Probe(addr uint32) bool {
	line := addr >> c.lineShift
	set := int(line) & (c.sets - 1)
	for w := 0; w < c.ways; w++ {
		i := set*c.ways + w
		if c.valid[i] && c.tags[i] == line {
			return true
		}
	}
	return false
}

// Access implements Level.
func (c *Cache) Access(addr uint32, write bool) int {
	c.stats.Accesses++
	line := addr >> c.lineShift
	set := int(line) & (c.sets - 1)
	base := set * c.ways

	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.clock++
			c.stamp[i] = c.clock
			if write {
				c.dirty[i] = true
			}
			return c.hitLatency
		}
	}

	// Miss: fetch the line from below (write-allocate), evicting LRU.
	c.stats.Misses++
	latency := c.hitLatency + c.next.Access(addr, false)

	victim := base
	for w := 0; w < c.ways; w++ {
		i := base + w
		if !c.valid[i] {
			victim = i
			break
		}
		if c.stamp[i] < c.stamp[victim] {
			victim = i
		}
	}
	if c.valid[victim] && c.dirty[victim] {
		c.stats.WriteBacks++
		// Buffered write-back: state change at the next level, no latency.
		c.next.Access(c.tags[victim]<<c.lineShift, true)
	}
	c.valid[victim] = true
	c.tags[victim] = line
	c.dirty[victim] = write
	c.clock++
	c.stamp[victim] = c.clock
	return latency
}

// Hierarchy is the baseline two-level organization.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
	Mem *MainMemory
}

// HierarchyConfig sizes every level.
type HierarchyConfig struct {
	L1I, L1D, L2 Config
	MemLatency   int
}

// NewHierarchy wires L1I and L1D over a unified L2 over main memory.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	mem := NewMainMemory(cfg.MemLatency)
	l2 := New(cfg.L2, mem)
	return &Hierarchy{
		L1I: New(cfg.L1I, l2),
		L1D: New(cfg.L1D, l2),
		L2:  l2,
		Mem: mem,
	}
}

// String summarizes the hierarchy's statistics.
func (h *Hierarchy) String() string {
	f := func(c *Cache) string {
		s := c.Stats()
		return fmt.Sprintf("%s: %d accesses, %.2f%% miss", c.Name(), s.Accesses, 100*s.MissRate())
	}
	return f(h.L1I) + "; " + f(h.L1D) + "; " + f(h.L2)
}
