package cache

import (
	"math/rand"
	"testing"
)

func smallCache(next Level) *Cache {
	return New(Config{
		Name: "l1", SizeBytes: 256, Ways: 2, LineBytes: 32, HitLatency: 1,
	}, next)
}

func TestHitAfterMiss(t *testing.T) {
	mem := NewMainMemory(50)
	c := smallCache(mem)
	if lat := c.Access(0x1000, false); lat != 51 {
		t.Errorf("cold miss latency = %d, want 51", lat)
	}
	if lat := c.Access(0x1004, false); lat != 1 {
		t.Errorf("same-line hit latency = %d, want 1", lat)
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLineGranularity(t *testing.T) {
	c := smallCache(NewMainMemory(10))
	c.Access(0x1000, false)
	// Every word in [0x1000, 0x1020) is the same 32-byte line.
	for a := uint32(0x1000); a < 0x1020; a += 4 {
		if lat := c.Access(a, false); lat != 1 {
			t.Errorf("addr %#x should hit, latency %d", a, lat)
		}
	}
	// Next line misses.
	if lat := c.Access(0x1020, false); lat == 1 {
		t.Error("next line should miss")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// 256B, 2-way, 32B lines -> 4 sets. Lines mapping to set 0 are
	// addresses with (addr>>5)%4 == 0: 0x000, 0x080, 0x100, ...
	c := smallCache(NewMainMemory(10))
	c.Access(0x000, false)
	c.Access(0x080, false)
	c.Access(0x000, false) // touch; LRU = 0x080
	c.Access(0x100, false) // evicts 0x080
	if lat := c.Access(0x000, false); lat != 1 {
		t.Error("0x000 should have survived")
	}
	if lat := c.Access(0x080, false); lat == 1 {
		t.Error("0x080 should have been evicted")
	}
}

func TestWriteBackOnlyWhenDirty(t *testing.T) {
	mem := NewMainMemory(10)
	c := smallCache(mem)
	// Fill set 0 with clean lines, then evict: no write-back.
	c.Access(0x000, false)
	c.Access(0x080, false)
	c.Access(0x100, false)
	if s := c.Stats(); s.WriteBacks != 0 {
		t.Errorf("clean eviction caused %d write-backs", s.WriteBacks)
	}
	// Dirty a line, force its eviction: one write-back.
	c.Access(0x180, true)  // write-allocate, dirty
	c.Access(0x200, false) // set 0 again... (0x180>>5)%4 = 12%4 = 0
	c.Access(0x280, false)
	if s := c.Stats(); s.WriteBacks != 1 {
		t.Errorf("writebacks = %d, want 1", s.WriteBacks)
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	// Property: number of distinct resident lines <= total lines. Probe by
	// counting hits over a working set larger than the cache: with 8
	// lines of capacity and a 16-line working set cycled round-robin and
	// LRU replacement, everything must miss.
	c := smallCache(NewMainMemory(10))
	for round := 0; round < 4; round++ {
		for i := uint32(0); i < 16; i++ {
			c.Access(i*32, false)
		}
	}
	s := c.Stats()
	if s.Misses != s.Accesses {
		t.Errorf("LRU round-robin over 2x capacity should always miss: %+v", s)
	}
}

func TestHierarchyPlumbing(t *testing.T) {
	h := NewHierarchy(HierarchyConfig{
		L1I:        Config{Name: "l1i", SizeBytes: 1024, Ways: 2, LineBytes: 32, HitLatency: 1},
		L1D:        Config{Name: "l1d", SizeBytes: 1024, Ways: 2, LineBytes: 32, HitLatency: 1},
		L2:         Config{Name: "l2", SizeBytes: 8192, Ways: 4, LineBytes: 64, HitLatency: 8},
		MemLatency: 50,
	})
	// Cold: L1I miss -> L2 miss -> memory.
	if lat := h.L1I.Access(0x4000, false); lat != 1+8+50 {
		t.Errorf("cold inst fetch latency = %d, want 59", lat)
	}
	// L1D cold miss to the same line: L2 now holds it.
	if lat := h.L1D.Access(0x4000, false); lat != 1+8 {
		t.Errorf("L1D miss/L2 hit latency = %d, want 9", lat)
	}
	if h.Mem.Accesses != 1 {
		t.Errorf("memory accesses = %d, want 1", h.Mem.Accesses)
	}
	if h.String() == "" {
		t.Error("empty summary")
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	// Cross-check hit/miss decisions against a brute-force LRU model.
	type key = uint32
	const sets, ways, lineShift = 4, 2, 5
	c := smallCache(NewMainMemory(10))
	model := make([][]key, sets) // per-set MRU-first list of line addrs
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20000; i++ {
		addr := uint32(rng.Intn(64)) * 16 // overlapping lines
		line := addr >> lineShift
		set := line % sets
		// Model lookup.
		hit := false
		for j, l := range model[set] {
			if l == line {
				hit = true
				copy(model[set][1:j+1], model[set][:j])
				model[set][0] = line
				break
			}
		}
		if !hit {
			if len(model[set]) == ways {
				model[set] = model[set][:ways-1]
			}
			model[set] = append([]key{line}, model[set]...)
		}
		lat := c.Access(addr, rng.Intn(2) == 0)
		gotHit := lat == 1
		if gotHit != hit {
			t.Fatalf("access %d addr %#x: cache hit=%v model hit=%v", i, addr, gotHit, hit)
		}
	}
}

func TestGeometryPanics(t *testing.T) {
	mem := NewMainMemory(1)
	bad := []Config{
		{SizeBytes: 100, Ways: 2, LineBytes: 33, HitLatency: 1}, // line not pow2
		{SizeBytes: 0, Ways: 2, LineBytes: 32, HitLatency: 1},
		{SizeBytes: 256, Ways: 0, LineBytes: 32, HitLatency: 1},
		{SizeBytes: 96, Ways: 1, LineBytes: 32, HitLatency: 1}, // 3 sets
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			New(cfg, mem)
		}()
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty miss rate should be 0")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Error("miss rate")
	}
}
