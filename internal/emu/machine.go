package emu

import (
	"bytes"
	"fmt"
	"strconv"

	"retstack/internal/isa"
	"retstack/internal/program"
	"retstack/internal/stats"
)

// Machine is the architectural machine: register file, memory, PC, and the
// minimal OS (output buffer, exit status). It implements State, so Exec can
// run against it directly, and it is the retirement oracle for the
// cycle-level pipeline.
type Machine struct {
	Regs [isa.NumRegs]uint32
	PC   uint32
	Mem  *Memory

	Halted   bool
	ExitCode int32
	output   bytes.Buffer

	InstCount uint64
	// ClassCounts tallies retired instructions by class (for Table 2).
	ClassCounts [16]uint64

	// plane is the loaded image's predecode plane (nil when the image has
	// no code segment or predecode is disabled); FetchInst serves from it.
	plane *program.Plane
	// PredecodeHits / PredecodeFallbacks count FetchInst calls served from
	// the plane vs. decoded from memory (plane off, PC outside the code
	// segment, or code region dirtied by a store).
	PredecodeHits      uint64
	PredecodeFallbacks uint64

	// noBlocks disables basic-block dispatch (see block.go). BlockHits
	// counts block dispatches served from the plane's block table;
	// BlockBuilds counts distinct block entry points this machine
	// dispatched for the first time — the descriptor builds it would
	// perform with a private table. The actual lazy build runs at most
	// once per block on the shared plane, so counting real builds would
	// depend on which machine touched a shared image first; the per-machine
	// first-entry count (tracked in blockSeen) is deterministic. Purely
	// observational, like the predecode counters.
	noBlocks    bool
	BlockHits   uint64
	BlockBuilds uint64
	blockSeen   []uint64 // bitmap over plane slots: block entries dispatched

	// Call-depth tracking for workload characterization.
	depth     int
	MaxDepth  int
	SumDepth  uint64 // sum of depth over retired calls, for mean depth
	Calls     uint64
	Returns   uint64
	DepthHist *stats.Histogram // depth observed at each call
}

// NewMachine returns a machine with zeroed state and empty memory.
func NewMachine() *Machine {
	return &Machine{Mem: NewMemory(), DepthHist: stats.NewHistogram()}
}

// Load maps an image into memory and initializes PC, $sp and $gp. The
// code segment is installed as the memory's flat code region — aliasing
// the image's bytes, shared read-only with every other machine loading
// the same image (copy-on-write protects the image from self-modifying
// stores) — and the image's predecode plane is attached for FetchInst.
// Data segments are copied into the page map as before.
func (m *Machine) Load(im *program.Image) {
	code, hasCode := im.CodeSegment()
	for _, seg := range im.Segments {
		if hasCode && seg.Addr == code.Addr {
			m.Mem.SetCodeRegion(seg.Addr, seg.Data)
			continue
		}
		m.Mem.WriteBytes(seg.Addr, seg.Data)
	}
	m.plane = nil
	if hasCode {
		m.plane = im.Predecode()
	}
	if m.plane != nil {
		m.blockSeen = make([]uint64, (m.plane.Len()+63)/64)
	}
	m.PC = im.Entry
	m.Regs[isa.SP] = program.DefaultStackTop
	m.Regs[isa.GP] = program.DefaultGPBase
}

// DisablePredecode detaches the predecode plane, forcing every FetchInst
// through Read32+Decode. Used by the determinism tests and the
// -no-predecode flag to pin that the plane changes nothing but speed.
func (m *Machine) DisablePredecode() { m.plane = nil }

// ReadReg implements State.
func (m *Machine) ReadReg(r int) uint32 {
	if r == isa.Zero {
		return 0
	}
	return m.Regs[r]
}

// WriteReg implements State.
func (m *Machine) WriteReg(r int, v uint32) {
	if r != isa.Zero {
		m.Regs[r] = v
	}
}

// ReadMem8 implements State.
func (m *Machine) ReadMem8(addr uint32) byte { return m.Mem.Read8(addr) }

// WriteMem8 implements State.
func (m *Machine) WriteMem8(addr uint32, v byte) { m.Mem.Write8(addr, v) }

// ReadMem16 implements State.
func (m *Machine) ReadMem16(addr uint32) uint16 { return m.Mem.Read16(addr) }

// WriteMem16 implements State.
func (m *Machine) WriteMem16(addr uint32, v uint16) { m.Mem.Write16(addr, v) }

// ReadMem32 implements State.
func (m *Machine) ReadMem32(addr uint32) uint32 { return m.Mem.Read32(addr) }

// WriteMem32 implements State.
func (m *Machine) WriteMem32(addr uint32, v uint32) { m.Mem.Write32(addr, v) }

// FetchWord returns the instruction word at addr.
func (m *Machine) FetchWord(addr uint32) uint32 { return m.Mem.Read32(addr) }

// FetchInst returns the decoded instruction at pc. It is served from the
// image's predecode plane when possible — one bounds-checked table load —
// and falls back to FetchWord+Decode when the plane is absent, pc lies
// outside the predecoded code segment (e.g. wrong-path fetch running into
// data), or a store has dirtied the code region. The fallback decodes the
// same bytes the plane was built from, so the result is identical either
// way; only the cost differs.
func (m *Machine) FetchInst(pc uint32) isa.Inst {
	if m.plane != nil && !m.Mem.codeDirty {
		if in, ok := m.plane.Lookup(pc); ok {
			m.PredecodeHits++
			return in
		}
	}
	m.PredecodeFallbacks++
	return isa.Decode(m.Mem.Read32(pc))
}

// FetchInstClass is FetchInst plus the instruction's class, served from the
// plane's precomputed class table on a hit so fetch classifies in two table
// loads instead of re-deriving the class per instruction.
func (m *Machine) FetchInstClass(pc uint32) (isa.Inst, isa.Class) {
	if m.plane != nil && !m.Mem.codeDirty {
		if in, cl, ok := m.plane.LookupClass(pc); ok {
			m.PredecodeHits++
			return in, cl
		}
	}
	m.PredecodeFallbacks++
	in := isa.Decode(m.Mem.Read32(pc))
	return in, in.Class()
}

// ApplySyscall performs the architectural side effects of a syscall
// outcome. It is exported so the pipeline can apply syscalls at the point
// its model treats as architectural.
func (m *Machine) ApplySyscall(out Outcome) {
	switch out.Syscall {
	case SysExit:
		m.Halted = true
		m.ExitCode = int32(out.SyscallArg)
	case SysPutInt:
		m.output.WriteString(strconv.FormatInt(int64(int32(out.SyscallArg)), 10))
		m.output.WriteByte('\n')
	case SysPutChar:
		m.output.WriteByte(byte(out.SyscallArg))
	}
}

// NoteRetired updates instruction-mix and call-depth statistics for one
// retired instruction.
func (m *Machine) NoteRetired(in isa.Inst) {
	m.NoteRetiredClass(in.Class())
}

// NoteRetiredClass is NoteRetired for callers that already know the
// instruction's class (the pipeline carries it from fetch), skipping the
// per-retire reclassification.
func (m *Machine) NoteRetiredClass(c isa.Class) {
	m.InstCount++
	m.ClassCounts[c]++
	switch {
	case c.IsCall():
		m.Calls++
		m.depth++
		if m.depth > m.MaxDepth {
			m.MaxDepth = m.depth
		}
		m.SumDepth += uint64(m.depth)
		m.DepthHist.Add(m.depth)
	case c == isa.ClassReturn:
		m.Returns++
		if m.depth > 0 {
			m.depth--
		}
	}
}

// Step executes exactly one instruction, applying all architectural side
// effects, and returns the decoded instruction and its outcome.
func (m *Machine) Step() (isa.Inst, Outcome, error) {
	if m.Halted {
		return isa.Inst{}, Outcome{}, fmt.Errorf("emu: step after halt")
	}
	in := m.FetchInst(m.PC)
	out, err := Exec(m, m.PC, in)
	if err != nil {
		return in, out, fmt.Errorf("emu: at pc=%#x (%s): %w", m.PC, in.Disasm(m.PC), err)
	}
	if out.Syscall != SysNone {
		m.ApplySyscall(out)
	}
	m.NoteRetired(in)
	m.PC = out.NextPC
	return in, out, nil
}

// Run executes until halt or until maxInsts instructions have retired
// (maxInsts <= 0 means unbounded). It returns the number of instructions
// executed by this call. With a predecode plane attached (and blocks not
// disabled) it dispatches basic blocks through the fast interpreter in
// block.go; otherwise it is the classic one-Step-per-iteration loop. The
// two produce bit-identical architectural state, output, and errors.
func (m *Machine) Run(maxInsts uint64) (uint64, error) {
	if m.noBlocks || m.plane == nil {
		return m.runSteps(maxInsts)
	}
	return m.runBlocks(maxInsts)
}

// runSteps is the reference single-instruction Run loop.
func (m *Machine) runSteps(maxInsts uint64) (uint64, error) {
	var n uint64
	for !m.Halted {
		if maxInsts > 0 && n >= maxInsts {
			break
		}
		if _, _, err := m.Step(); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Output returns everything the program printed.
func (m *Machine) Output() string { return m.output.String() }
