// Package emu provides the functional emulator: a sparse byte-addressed
// memory, precise instruction semantics (Exec), an architectural machine
// for whole-program runs, and copy-on-write overlay state used by the
// cycle-level pipeline to execute wrong-path instructions without
// disturbing architectural state.
package emu

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Memory is a sparse, zero-filled, little-endian byte-addressed memory.
// Reads of unmapped addresses return zero; writes allocate pages on demand.
// The zero value is ready to use.
//
// Two fast paths sit in front of the page map:
//
//   - A flat code region (SetCodeRegion): one contiguous slice covering
//     the loaded image's text segment, indexed with a single bounds check.
//     The slice initially aliases the image's bytes — shared read-only by
//     every machine loading the same image — and is cloned copy-on-write
//     by the first store into it, which also sets the codeDirty flag so
//     instruction fetch stops trusting the predecode plane.
//   - A 1-entry last-page cache for everything else, exploiting the
//     locality of stack and data traffic. Pages are never freed, so the
//     cache can only go stale by being overwritten, never dangle.
type Memory struct {
	pages map[uint32]*[pageSize]byte

	codeBase   uint32
	code       []byte
	codeShared bool // code still aliases the image segment (clone before store)
	codeDirty  bool // some store has landed in the code region

	// codeInvalidations counts clean→dirty transitions of the code region —
	// each one invalidates the predecode plane and every basic-block
	// descriptor over it for this machine. SetCodeRegion re-arms the flag,
	// so a region can be invalidated once per installation.
	codeInvalidations uint64

	lastKey  uint32 // cached page key + 1; 0 = empty
	lastPage *[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{pages: make(map[uint32]*[pageSize]byte)} }

// SetCodeRegion installs the flat code region [base, base+len(data)).
// data is retained and aliased, not copied: callers share one image's
// segment bytes across machines, and the first store into the region
// clones it (copy-on-write) so the image stays immutable. Reads and
// writes inside the region never touch the page map.
func (m *Memory) SetCodeRegion(base uint32, data []byte) {
	m.codeBase = base
	m.code = data
	m.codeShared = true
	m.codeDirty = false
}

// CodeDirty reports whether any store has hit the code region since
// SetCodeRegion. Instruction fetch uses it as the predecode-plane
// invalidation hook: once dirty, fetch falls back to decode-on-read.
func (m *Memory) CodeDirty() bool { return m.codeDirty }

// storeCode performs a code-region store: clone-on-first-write, then mark
// the region dirty.
func (m *Memory) storeCode(off uint32, v byte) {
	if m.codeShared {
		m.code = append([]byte(nil), m.code...)
		m.codeShared = false
	}
	m.code[off] = v
	if !m.codeDirty {
		m.codeDirty = true
		m.codeInvalidations++
	}
}

// CodeInvalidations returns the number of clean→dirty code-region
// transitions (block/plane invalidation events) observed so far.
func (m *Memory) CodeInvalidations() uint64 { return m.codeInvalidations }

func (m *Memory) page(addr uint32, alloc bool) *[pageSize]byte {
	if m.pages == nil {
		if !alloc {
			return nil
		}
		m.pages = make(map[uint32]*[pageSize]byte)
	}
	key := addr >> pageShift
	p := m.pages[key]
	if p == nil && alloc {
		p = new([pageSize]byte)
		m.pages[key] = p
	}
	if p != nil {
		m.lastKey = key + 1
		m.lastPage = p
	}
	return p
}

// Read8 returns the byte at addr.
func (m *Memory) Read8(addr uint32) byte {
	if off := addr - m.codeBase; off < uint32(len(m.code)) {
		return m.code[off]
	}
	if key := addr>>pageShift + 1; key == m.lastKey {
		return m.lastPage[addr&pageMask]
	}
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Write8 stores one byte at addr.
func (m *Memory) Write8(addr uint32, v byte) {
	if off := addr - m.codeBase; off < uint32(len(m.code)) {
		m.storeCode(off, v)
		return
	}
	if key := addr>>pageShift + 1; key == m.lastKey {
		m.lastPage[addr&pageMask] = v
		return
	}
	m.page(addr, true)[addr&pageMask] = v
}

// straddlesCode reports whether the 4-byte access at addr begins below the
// code region but reaches into it (only possible when the region is not
// page-aligned); such accesses must take the byte path.
func (m *Memory) straddlesCode(addr uint32) bool {
	return len(m.code) != 0 && m.codeBase-addr < 4
}

// Read32 returns the little-endian word at addr (no alignment requirement
// at this layer; callers enforce ISA alignment).
func (m *Memory) Read32(addr uint32) uint32 {
	// Fast path: whole word within the flat code region.
	if off := addr - m.codeBase; off < uint32(len(m.code)) {
		if uint32(len(m.code))-off >= 4 {
			c := m.code
			return uint32(c[off]) | uint32(c[off+1])<<8 | uint32(c[off+2])<<16 | uint32(c[off+3])<<24
		}
	} else if addr&pageMask <= pageSize-4 && !m.straddlesCode(addr) {
		// Fast path: whole word within one data page.
		var p *[pageSize]byte
		if key := addr>>pageShift + 1; key == m.lastKey {
			p = m.lastPage
		} else {
			p = m.page(addr, false)
		}
		if p == nil {
			return 0
		}
		o := addr & pageMask
		return uint32(p[o]) | uint32(p[o+1])<<8 | uint32(p[o+2])<<16 | uint32(p[o+3])<<24
	}
	return uint32(m.Read8(addr)) | uint32(m.Read8(addr+1))<<8 |
		uint32(m.Read8(addr+2))<<16 | uint32(m.Read8(addr+3))<<24
}

// Write32 stores a little-endian word at addr.
func (m *Memory) Write32(addr uint32, v uint32) {
	if off := addr - m.codeBase; off < uint32(len(m.code)) {
		// Code-region store: byte path (storeCode handles CoW + dirty).
	} else if addr&pageMask <= pageSize-4 && !m.straddlesCode(addr) {
		var p *[pageSize]byte
		if key := addr>>pageShift + 1; key == m.lastKey {
			p = m.lastPage
		} else {
			p = m.page(addr, true)
		}
		o := addr & pageMask
		p[o], p[o+1], p[o+2], p[o+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		return
	}
	m.Write8(addr, byte(v))
	m.Write8(addr+1, byte(v>>8))
	m.Write8(addr+2, byte(v>>16))
	m.Write8(addr+3, byte(v>>24))
}

// Read16 returns the little-endian halfword at addr.
func (m *Memory) Read16(addr uint32) uint16 {
	return uint16(m.Read8(addr)) | uint16(m.Read8(addr+1))<<8
}

// Write16 stores a little-endian halfword at addr.
func (m *Memory) Write16(addr uint32, v uint16) {
	m.Write8(addr, byte(v))
	m.Write8(addr+1, byte(v>>8))
}

// WriteBytes copies data into memory starting at addr.
func (m *Memory) WriteBytes(addr uint32, data []byte) {
	for i, b := range data {
		m.Write8(addr+uint32(i), b)
	}
}

// PageCount returns the number of allocated pages (for tests and stats).
// The flat code region is not paged and does not count.
func (m *Memory) PageCount() int { return len(m.pages) }
