// Package emu provides the functional emulator: a sparse byte-addressed
// memory, precise instruction semantics (Exec), an architectural machine
// for whole-program runs, and copy-on-write overlay state used by the
// cycle-level pipeline to execute wrong-path instructions without
// disturbing architectural state.
package emu

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Memory is a sparse, zero-filled, little-endian byte-addressed memory.
// Reads of unmapped addresses return zero; writes allocate pages on demand.
// The zero value is ready to use.
type Memory struct {
	pages map[uint32]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{pages: make(map[uint32]*[pageSize]byte)} }

func (m *Memory) page(addr uint32, alloc bool) *[pageSize]byte {
	if m.pages == nil {
		if !alloc {
			return nil
		}
		m.pages = make(map[uint32]*[pageSize]byte)
	}
	key := addr >> pageShift
	p := m.pages[key]
	if p == nil && alloc {
		p = new([pageSize]byte)
		m.pages[key] = p
	}
	return p
}

// Read8 returns the byte at addr.
func (m *Memory) Read8(addr uint32) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Write8 stores one byte at addr.
func (m *Memory) Write8(addr uint32, v byte) {
	m.page(addr, true)[addr&pageMask] = v
}

// Read32 returns the little-endian word at addr (no alignment requirement
// at this layer; callers enforce ISA alignment).
func (m *Memory) Read32(addr uint32) uint32 {
	// Fast path: whole word within one page.
	if addr&pageMask <= pageSize-4 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		o := addr & pageMask
		return uint32(p[o]) | uint32(p[o+1])<<8 | uint32(p[o+2])<<16 | uint32(p[o+3])<<24
	}
	return uint32(m.Read8(addr)) | uint32(m.Read8(addr+1))<<8 |
		uint32(m.Read8(addr+2))<<16 | uint32(m.Read8(addr+3))<<24
}

// Write32 stores a little-endian word at addr.
func (m *Memory) Write32(addr uint32, v uint32) {
	if addr&pageMask <= pageSize-4 {
		p := m.page(addr, true)
		o := addr & pageMask
		p[o], p[o+1], p[o+2], p[o+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		return
	}
	m.Write8(addr, byte(v))
	m.Write8(addr+1, byte(v>>8))
	m.Write8(addr+2, byte(v>>16))
	m.Write8(addr+3, byte(v>>24))
}

// Read16 returns the little-endian halfword at addr.
func (m *Memory) Read16(addr uint32) uint16 {
	return uint16(m.Read8(addr)) | uint16(m.Read8(addr+1))<<8
}

// Write16 stores a little-endian halfword at addr.
func (m *Memory) Write16(addr uint32, v uint16) {
	m.Write8(addr, byte(v))
	m.Write8(addr+1, byte(v>>8))
}

// WriteBytes copies data into memory starting at addr.
func (m *Memory) WriteBytes(addr uint32, data []byte) {
	for i, b := range data {
		m.Write8(addr+uint32(i), b)
	}
}

// PageCount returns the number of allocated pages (for tests and stats).
func (m *Memory) PageCount() int { return len(m.pages) }
