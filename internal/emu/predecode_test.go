package emu

import (
	"testing"

	"retstack/internal/isa"
	"retstack/internal/program"
)

// testImage assembles a tiny program: main calls leaf, adds, exits.
func testImage(t *testing.T) *program.Image {
	t.Helper()
	b := program.NewBuilder()
	b.Label("main")
	b.Li(2, 5)
	b.Jal("leaf")
	b.Emit(isa.I(isa.OpADDI, 2, 2, 1))
	b.Li(isa.V0, int32(SysExit))
	b.Li(isa.A0, 0)
	b.Emit(isa.Syscall())
	b.Label("leaf")
	b.Emit(isa.R(isa.OpADD, 2, 2, 2), isa.Jr(isa.RA))
	im, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// TestCodeRegionReadWrite pins the flat code region's byte-accurate
// semantics: reads inside it see the image, reads around it see the page
// map, and word accesses straddling its boundary mix the two correctly.
func TestCodeRegionReadWrite(t *testing.T) {
	m := NewMemory()
	m.SetCodeRegion(0x1002, []byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66})
	if got := m.Read32(0x1002); got != 0x44332211 {
		t.Fatalf("in-region word: got %#x", got)
	}
	// Straddle below: two page bytes (zero) + two code bytes.
	if got := m.Read32(0x1000); got != 0x22110000 {
		t.Fatalf("straddle-low word: got %#x", got)
	}
	// Straddle above: last two code bytes + two page bytes (zero).
	if got := m.Read32(0x1006); got != 0x00006655 {
		t.Fatalf("straddle-high word: got %#x", got)
	}
	// A write below the region lands in the page map, not the code slice.
	m.Write32(0x1000, 0xAABBCCDD)
	if got := m.Read8(0x1001); got != 0xCC {
		t.Fatalf("page byte under region write: got %#x", got)
	}
	if got, want := m.Read8(0x1002), byte(0xBB); got != want {
		t.Fatalf("code byte after straddling write: got %#x want %#x", got, want)
	}
}

// TestCodeWriteInvalidation: a store into the code region must (a) be
// visible to subsequent fetches, (b) flip CodeDirty so FetchInst abandons
// the plane, and (c) not corrupt the shared image (copy-on-write).
func TestCodeWriteInvalidation(t *testing.T) {
	im := testImage(t)
	seg, _ := im.CodeSegment()
	orig := append([]byte(nil), seg.Data...)

	a, b := NewMachine(), NewMachine()
	a.Load(im)
	b.Load(im)

	if a.Mem.CodeDirty() {
		t.Fatal("fresh load reports a dirty code region")
	}
	before := a.FetchInst(im.Entry)
	if a.PredecodeHits == 0 {
		t.Fatal("clean in-segment fetch bypassed the plane")
	}

	// Overwrite the entry instruction with a recognizable word.
	patched := isa.I(isa.OpADDI, 9, 0, 42)
	a.Mem.Write32(im.Entry, patched.Raw)
	if !a.Mem.CodeDirty() {
		t.Fatal("code store did not dirty the region")
	}
	got := a.FetchInst(im.Entry)
	if got != patched {
		t.Fatalf("fetch after code store: got %+v want %+v", got, patched)
	}

	// Machine b and the image itself must be untouched.
	if in := b.FetchInst(im.Entry); in != before {
		t.Fatalf("sibling machine saw the store: %+v != %+v", in, before)
	}
	seg2, _ := im.CodeSegment()
	for i := range orig {
		if seg2.Data[i] != orig[i] {
			t.Fatalf("image byte %d mutated: %#x != %#x", i, seg2.Data[i], orig[i])
		}
	}
}

// TestFetchInstMatchesDecode: for every PC in and around the code segment,
// FetchInst equals Decode(Read32), plane or no plane.
func TestFetchInstMatchesDecode(t *testing.T) {
	im := testImage(t)
	seg, _ := im.CodeSegment()

	withPlane, noPlane := NewMachine(), NewMachine()
	withPlane.Load(im)
	noPlane.Load(im)
	noPlane.DisablePredecode()

	for pc := seg.Addr - 8; pc < seg.End()+8; pc += 4 {
		want := isa.Decode(withPlane.Mem.Read32(pc))
		if got := withPlane.FetchInst(pc); got != want {
			t.Fatalf("pc %#x: plane fetch %+v != decode %+v", pc, got, want)
		}
		if got := noPlane.FetchInst(pc); got != want {
			t.Fatalf("pc %#x: fallback fetch %+v != decode %+v", pc, got, want)
		}
	}
	if withPlane.PredecodeHits == 0 || withPlane.PredecodeFallbacks == 0 {
		t.Fatalf("expected both hits and fallbacks, got %d/%d",
			withPlane.PredecodeHits, withPlane.PredecodeFallbacks)
	}
	if noPlane.PredecodeHits != 0 {
		t.Fatalf("disabled plane still hit %d times", noPlane.PredecodeHits)
	}
}

// TestRunIdenticalWithAndWithoutPlane runs the same program to completion
// both ways and compares every piece of architectural state.
func TestRunIdenticalWithAndWithoutPlane(t *testing.T) {
	im := testImage(t)
	a, b := NewMachine(), NewMachine()
	a.Load(im)
	b.Load(im)
	b.DisablePredecode()

	na, errA := a.Run(0)
	nb, errB := b.Run(0)
	if errA != nil || errB != nil {
		t.Fatalf("run errors: %v / %v", errA, errB)
	}
	if na != nb || a.PC != b.PC || a.Regs != b.Regs || a.ExitCode != b.ExitCode {
		t.Fatalf("diverged: insts %d/%d pc %#x/%#x exit %d/%d",
			na, nb, a.PC, b.PC, a.ExitCode, b.ExitCode)
	}
	if a.PredecodeHits == 0 {
		t.Fatal("plane never used during Run")
	}
}
