package emu

import (
	"retstack/internal/isa"
)

// Basic-block dispatch: Run executes whole block bodies through a
// concrete-typed interpreter instead of re-entering the generic
// fetch→Exec→retire round trip per instruction. The plane's block table
// (program.Plane.BlockLenAt) says how many provably straight-line
// instructions start at the current PC; those can skip the State-interface
// indirection, the Outcome construction, and the per-instruction halt and
// fetch checks, because a block body by construction contains no control
// transfer and no syscall. Anything the fast path cannot prove equivalent —
// invalid encodings, misaligned accesses, a store that dirties the code
// region, a PC outside the plane — stops the batch and re-executes through
// Step, so errors, counters, and architectural state are bit-for-bit the
// single-step semantics. DisableBlocks (Config.NoBlocks / -no-blocks)
// forces everything through Step for A/B verification.

// DisableBlocks turns off basic-block dispatch: Run degrades to the
// single-instruction Step loop and the pipeline's fetch/fast-forward block
// paths see no blocks from this machine. Like DisablePredecode it is a pure
// simulator-speed switch — architectural results are identical either way.
func (m *Machine) DisableBlocks() { m.noBlocks = true }

// runBlocks is Run's block-dispatch loop: execute the straight-line body of
// the current block in one batch, then its terminator (fast for plain
// branches and jumps, via Step for syscalls and anything unusual).
func (m *Machine) runBlocks(maxInsts uint64) (uint64, error) {
	var n uint64
	for !m.Halted {
		if maxInsts > 0 && n >= maxInsts {
			break
		}
		budget := ^uint64(0)
		if maxInsts > 0 {
			budget = maxInsts - n
		}
		k, full := m.stepBlockBody(budget, nil, nil)
		n += k
		if maxInsts > 0 && n >= maxInsts {
			break
		}
		if full && m.stepTerminator() {
			n++
			continue
		}
		// Whatever stopped the fast path — the block's terminator being a
		// syscall, an invalid encoding, a misaligned access, a store that
		// dirtied the code region, or a PC outside the plane — one reference
		// Step covers it with identical semantics and identical errors.
		if _, _, err := m.Step(); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// StepBlockBody executes up to budget straight-line instructions of the
// basic block at the current PC with the fast concrete-typed interpreter,
// returning how many retired (0 when the block path cannot serve the PC —
// blocks disabled, plane absent or dirtied, PC at a terminator, or an
// instruction Step must handle). ifetch runs before each instruction and
// access after each data access (either may be nil); pipeline fast-forward
// uses them to warm the caches in exactly the per-instruction I/D order the
// reference loop produces.
func (m *Machine) StepBlockBody(budget uint64, ifetch func(pc uint32), access func(addr uint32, store bool)) uint64 {
	k, _ := m.stepBlockBody(budget, ifetch, access)
	return k
}

// stepBlockBody is the block-body interpreter. full reports that the body
// ran to completion and the block's terminator is now at m.PC; the caller
// may then try stepTerminator. It mirrors Exec's semantics exactly for the
// non-control subset and stops — before any side effect — at anything it
// cannot mirror, leaving that instruction for Step.
func (m *Machine) stepBlockBody(budget uint64, ifetch func(uint32), access func(uint32, bool)) (uint64, bool) {
	p := m.plane
	if m.noBlocks || p == nil || m.Mem.codeDirty || budget == 0 {
		return 0, false
	}
	pc := m.PC
	idx := (pc - p.Base()) >> 2
	insts, classes := p.Tables()
	if pc&3 != 0 || idx >= uint32(len(insts)) {
		return 0, false
	}
	bl, _ := p.BlockLenAt(idx)
	m.noteBlockEntry(idx)
	m.BlockHits++
	fullBody := uint64(bl - 1)
	body := fullBody
	if body > budget {
		body = budget
	}
	regs := &m.Regs
	mem := m.Mem
	var done uint64
loop:
	for done < body {
		if ifetch != nil {
			ifetch(pc)
		}
		in := insts[idx]
		// Mirror ReadReg: $zero always reads 0 even if Regs[0] was poked.
		var rs, rt uint32
		if in.Rs != 0 {
			rs = regs[in.Rs]
		}
		if in.Rt != 0 {
			rt = regs[in.Rt]
		}
		dirtied := false
		switch in.Op {
		case isa.OpADD:
			if in.Rd != 0 {
				regs[in.Rd] = rs + rt
			}
		case isa.OpSUB:
			if in.Rd != 0 {
				regs[in.Rd] = rs - rt
			}
		case isa.OpAND:
			if in.Rd != 0 {
				regs[in.Rd] = rs & rt
			}
		case isa.OpOR:
			if in.Rd != 0 {
				regs[in.Rd] = rs | rt
			}
		case isa.OpXOR:
			if in.Rd != 0 {
				regs[in.Rd] = rs ^ rt
			}
		case isa.OpNOR:
			if in.Rd != 0 {
				regs[in.Rd] = ^(rs | rt)
			}
		case isa.OpSLT:
			if in.Rd != 0 {
				regs[in.Rd] = boolTo32(int32(rs) < int32(rt))
			}
		case isa.OpSLTU:
			if in.Rd != 0 {
				regs[in.Rd] = boolTo32(rs < rt)
			}
		case isa.OpSLL:
			if in.Rd != 0 {
				regs[in.Rd] = rt << in.Shamt
			}
		case isa.OpSRL:
			if in.Rd != 0 {
				regs[in.Rd] = rt >> in.Shamt
			}
		case isa.OpSRA:
			if in.Rd != 0 {
				regs[in.Rd] = uint32(int32(rt) >> in.Shamt)
			}
		case isa.OpSLLV:
			if in.Rd != 0 {
				regs[in.Rd] = rt << (rs & 31)
			}
		case isa.OpSRLV:
			if in.Rd != 0 {
				regs[in.Rd] = rt >> (rs & 31)
			}
		case isa.OpSRAV:
			if in.Rd != 0 {
				regs[in.Rd] = uint32(int32(rt) >> (rs & 31))
			}
		case isa.OpMUL:
			if in.Rd != 0 {
				regs[in.Rd] = rs * rt
			}
		case isa.OpDIV:
			// As in Exec: division by zero yields zero, overflow wraps.
			if in.Rd != 0 {
				if rt == 0 {
					regs[in.Rd] = 0
				} else {
					regs[in.Rd] = uint32(int32(rs) / int32(rt))
				}
			}
		case isa.OpREM:
			if in.Rd != 0 {
				if rt == 0 {
					regs[in.Rd] = 0
				} else {
					regs[in.Rd] = uint32(int32(rs) % int32(rt))
				}
			}

		case isa.OpADDI:
			if in.Rt != 0 {
				regs[in.Rt] = rs + uint32(in.Imm)
			}
		case isa.OpANDI:
			if in.Rt != 0 {
				regs[in.Rt] = rs & uint32(in.Imm)
			}
		case isa.OpORI:
			if in.Rt != 0 {
				regs[in.Rt] = rs | uint32(in.Imm)
			}
		case isa.OpXORI:
			if in.Rt != 0 {
				regs[in.Rt] = rs ^ uint32(in.Imm)
			}
		case isa.OpSLTI:
			if in.Rt != 0 {
				regs[in.Rt] = boolTo32(int32(rs) < in.Imm)
			}
		case isa.OpSLTIU:
			if in.Rt != 0 {
				regs[in.Rt] = boolTo32(rs < uint32(in.Imm))
			}
		case isa.OpLUI:
			if in.Rt != 0 {
				regs[in.Rt] = uint32(in.Imm) << 16
			}

		case isa.OpLW:
			addr := rs + uint32(in.Imm)
			if addr&3 != 0 {
				break loop
			}
			v := mem.Read32(addr)
			if in.Rt != 0 {
				regs[in.Rt] = v
			}
			if access != nil {
				access(addr, false)
			}
		case isa.OpLH, isa.OpLHU:
			addr := rs + uint32(in.Imm)
			if addr&1 != 0 {
				break loop
			}
			h := mem.Read16(addr)
			v := uint32(h)
			if in.Op == isa.OpLH {
				v = uint32(int32(int16(h)))
			}
			if in.Rt != 0 {
				regs[in.Rt] = v
			}
			if access != nil {
				access(addr, false)
			}
		case isa.OpLB, isa.OpLBU:
			addr := rs + uint32(in.Imm)
			b := mem.Read8(addr)
			v := uint32(b)
			if in.Op == isa.OpLB {
				v = uint32(int32(int8(b)))
			}
			if in.Rt != 0 {
				regs[in.Rt] = v
			}
			if access != nil {
				access(addr, false)
			}

		case isa.OpSW:
			addr := rs + uint32(in.Imm)
			if addr&3 != 0 {
				break loop
			}
			mem.Write32(addr, rt)
			if access != nil {
				access(addr, true)
			}
			dirtied = mem.codeDirty
		case isa.OpSH:
			addr := rs + uint32(in.Imm)
			if addr&1 != 0 {
				break loop
			}
			mem.Write16(addr, uint16(rt))
			if access != nil {
				access(addr, true)
			}
			dirtied = mem.codeDirty
		case isa.OpSB:
			addr := rs + uint32(in.Imm)
			mem.Write8(addr, byte(rt))
			if access != nil {
				access(addr, true)
			}
			dirtied = mem.codeDirty

		default:
			// Invalid encoding (decodes to ClassALU, so it can sit inside a
			// block body): stop before side effects; Step reports the error.
			break loop
		}
		m.ClassCounts[classes[idx]]++
		idx++
		pc += isa.WordBytes
		done++
		if dirtied {
			// The store just rewrote code: the plane — and every descriptor
			// over it — is stale. The store itself retired normally; stop so
			// the next instruction re-fetches from memory.
			break
		}
	}
	m.InstCount += done
	m.PredecodeHits += done // body instructions were served from the plane
	m.PC = pc
	return done, done == fullBody
}

// stepTerminator executes the control transfer at m.PC with concrete
// dispatch when it is one of the plain branch/jump forms. Syscalls (which
// can halt or print) and anything unusual return false for the caller to
// route through Step.
func (m *Machine) stepTerminator() bool {
	p := m.plane
	if m.noBlocks || p == nil || m.Mem.codeDirty {
		return false
	}
	pc := m.PC
	idx := (pc - p.Base()) >> 2
	insts, classes := p.Tables()
	if pc&3 != 0 || idx >= uint32(len(insts)) {
		return false
	}
	in := insts[idx]
	var rs uint32
	if in.Rs != 0 {
		rs = m.Regs[in.Rs]
	}
	npc := pc + isa.WordBytes
	switch in.Op {
	case isa.OpBEQ:
		var rt uint32
		if in.Rt != 0 {
			rt = m.Regs[in.Rt]
		}
		if rs == rt {
			npc = in.DirectTarget(pc)
		}
	case isa.OpBNE:
		var rt uint32
		if in.Rt != 0 {
			rt = m.Regs[in.Rt]
		}
		if rs != rt {
			npc = in.DirectTarget(pc)
		}
	case isa.OpBLEZ:
		if int32(rs) <= 0 {
			npc = in.DirectTarget(pc)
		}
	case isa.OpBGTZ:
		if int32(rs) > 0 {
			npc = in.DirectTarget(pc)
		}
	case isa.OpBLTZ:
		if int32(rs) < 0 {
			npc = in.DirectTarget(pc)
		}
	case isa.OpBGEZ:
		if int32(rs) >= 0 {
			npc = in.DirectTarget(pc)
		}
	case isa.OpJ:
		npc = in.DirectTarget(pc)
	case isa.OpJAL:
		m.Regs[isa.RA] = in.ReturnAddress(pc)
		npc = in.DirectTarget(pc)
	case isa.OpJR:
		npc = rs
	case isa.OpJALR:
		// rs was read above, so jalr rd, rd links correctly: the old value
		// is the target, mirroring Exec's read-before-link order.
		npc = rs
		if in.Rd != 0 {
			m.Regs[in.Rd] = in.ReturnAddress(pc)
		}
	default:
		return false
	}
	m.PredecodeHits++
	m.NoteRetiredClass(classes[idx])
	m.PC = npc
	return true
}

// FetchBlockBody returns the number of straight-line instructions (the
// basic block's body, excluding its terminator) starting at pc, served from
// the plane's block table — 0 when block dispatch cannot serve pc (blocks
// disabled, plane absent or dirtied by a code store, pc outside the plane
// or misaligned, or pc already at a terminator). The pipeline fetch stage
// uses the count to pull a whole block into the fetch queue in one call.
func (m *Machine) FetchBlockBody(pc uint32) int {
	p := m.plane
	if m.noBlocks || p == nil || m.Mem.codeDirty {
		return 0
	}
	idx := (pc - p.Base()) >> 2
	if pc&3 != 0 || idx >= uint32(p.Len()) {
		return 0
	}
	n, _ := p.BlockLenAt(idx)
	if n > 1 {
		m.noteBlockEntry(idx)
		m.BlockHits++
	}
	return int(n - 1)
}

// noteBlockEntry counts the first dispatch of each block entry point as a
// descriptor build. The real lazy build happens at most once per block on
// the shared plane, so counting it directly would make BlockBuilds depend
// on which machine touched a shared image first; first entries per machine
// are deterministic and equal the builds a private table would perform.
func (m *Machine) noteBlockEntry(idx uint32) {
	w, b := idx>>6, uint64(1)<<(idx&63)
	if m.blockSeen[w]&b == 0 {
		m.blockSeen[w] |= b
		m.BlockBuilds++
	}
}
