package emu

import "retstack/internal/isa"

// Overlay is the flat copy-on-write view the pipeline executes wrong-path
// instructions against. Registers shadow the base exactly as in MapOverlay
// (dirty bitmap + value array); memory is tracked at word granularity with a
// per-byte dirty mask so partial stores stay byte-exact while the common
// aligned word access is a single slot lookup.
//
// Clean bytes must always fall through to the *current* base: under
// multipath the correct path keeps mutating the architectural Machine while
// wrong-path overlays are live, so capturing base words at write time would
// drift. The per-byte masks are what keep the flat store byte-identical to
// the map reference.
//
// A typical wrong path touches a handful of words, so slots live in a small
// inline array scanned linearly; overflow spills to an open-addressed table
// that resets in O(1) via a generation stamp (a slot is live iff its gen
// matches the overlay's current epoch — no deletes, so linear probing needs
// no tombstones). The table is retained across Reset, which makes a pooled
// Overlay allocation-free in steady state.
type Overlay struct {
	base     State
	regDirty uint32 // bitmap over the 32 architectural registers
	regs     [isa.NumRegs]uint32

	inl  [ovInlineSlots]ovSlot
	ninl int

	tab     []ovSlot
	tgen    uint32 // current epoch; table slot live iff slot.gen == tgen
	tlive   int    // live table entries this epoch
	spilled bool   // table engaged since the last Reset

	spillCount *uint64 // optional telemetry hook, bumped once per spill epoch
}

// ovSlot holds one dirty word: data carries the speculative bytes in their
// memory lanes, mask has bit i set iff byte (word<<2)+i is dirty.
type ovSlot struct {
	word uint32
	data uint32
	mask uint8
	gen  uint32 // epoch stamp; meaningful only for table slots
}

const (
	ovInlineSlots = 12
	ovTableInit   = 64
	ovHashMul     = 2654435761 // Knuth multiplicative hash
)

// maskExpand widens a 4-bit byte mask to a 32-bit lane mask
// (bit i -> byte lane i), so partial-dirty words merge with the base in two
// AND/OR ops instead of four byte reads.
var maskExpand = [16]uint32{
	0x00000000, 0x000000FF, 0x0000FF00, 0x0000FFFF,
	0x00FF0000, 0x00FF00FF, 0x00FFFF00, 0x00FFFFFF,
	0xFF000000, 0xFF0000FF, 0xFF00FF00, 0xFF00FFFF,
	0xFFFF0000, 0xFFFF00FF, 0xFFFFFF00, 0xFFFFFFFF,
}

// NewOverlay returns an empty flat overlay on base.
func NewOverlay(base State) *Overlay {
	return &Overlay{base: base}
}

// Base returns the State this overlay falls through to.
func (o *Overlay) Base() State { return o.base }

// SetSpillCounter points the overlay at a counter bumped once per reset
// epoch in which the inline slots overflow into the table. Pass nil to
// detach.
func (o *Overlay) SetSpillCounter(c *uint64) { o.spillCount = c }

// Reset discards every speculative register and memory update in O(1):
// the inline array is truncated and the table epoch advances, orphaning all
// table slots without touching them.
func (o *Overlay) Reset() {
	o.regDirty = 0
	o.ninl = 0
	if o.spilled {
		o.spilled = false
		o.tlive = 0
		o.tgen++
		if o.tgen == 0 { // epoch wrapped: stale stamps become ambiguous, wipe
			for i := range o.tab {
				o.tab[i].gen = 0
			}
			o.tgen = 1
		}
	}
}

// Rebase resets the overlay and retargets it at a new base, making a pooled
// overlay reusable across paths and simulator instances.
func (o *Overlay) Rebase(base State) {
	o.Reset()
	o.base = base
}

// CopyFrom resets the overlay and copies src's base and full speculative
// state into it (the pooled equivalent of Clone, used when a wrong path
// forks). src must not be the receiver.
func (o *Overlay) CopyFrom(src *Overlay) {
	o.Reset()
	o.base = src.base
	o.regDirty = src.regDirty
	o.regs = src.regs
	o.ninl = src.ninl
	copy(o.inl[:src.ninl], src.inl[:src.ninl])
	if src.spilled {
		for i := range src.tab {
			s := &src.tab[i]
			if s.gen != src.tgen {
				continue
			}
			t := o.insertTable(s.word)
			t.data, t.mask = s.data, s.mask
		}
	}
}

// Clone returns an independent overlay over the same base with a copy of
// the current speculative state.
func (o *Overlay) Clone() *Overlay {
	n := NewOverlay(o.base)
	n.CopyFrom(o)
	return n
}

// Dirty reports whether the overlay holds any speculative state. Memory
// dirtiness reduces to ninl > 0 because the inline array always fills
// before the table engages.
func (o *Overlay) Dirty() bool { return o.regDirty != 0 || o.ninl > 0 }

// find returns the slot for word index w, or nil if w is clean.
func (o *Overlay) find(w uint32) *ovSlot {
	for i := 0; i < o.ninl; i++ {
		if o.inl[i].word == w {
			return &o.inl[i]
		}
	}
	if !o.spilled {
		return nil
	}
	m := uint32(len(o.tab) - 1)
	for i := (w * ovHashMul) & m; ; i = (i + 1) & m {
		s := &o.tab[i]
		if s.gen != o.tgen {
			return nil
		}
		if s.word == w {
			return s
		}
	}
}

// slot returns the slot for word index w, creating it (with an empty mask)
// if absent.
func (o *Overlay) slot(w uint32) *ovSlot {
	if s := o.find(w); s != nil {
		return s
	}
	if o.ninl < ovInlineSlots {
		s := &o.inl[o.ninl]
		o.ninl++
		*s = ovSlot{word: w}
		return s
	}
	return o.insertTable(w)
}

// insertTable places a fresh slot for w in the open-addressed table,
// engaging (and if needed allocating or growing) it first.
func (o *Overlay) insertTable(w uint32) *ovSlot {
	if !o.spilled {
		o.spilled = true
		if o.spillCount != nil {
			*o.spillCount++
		}
		if o.tab == nil {
			o.tab = make([]ovSlot, ovTableInit)
			o.tgen = 1
		}
	}
	if o.tlive >= len(o.tab)*3/4 {
		o.grow()
	}
	m := uint32(len(o.tab) - 1)
	for i := (w * ovHashMul) & m; ; i = (i + 1) & m {
		s := &o.tab[i]
		if s.gen != o.tgen {
			*s = ovSlot{word: w, gen: o.tgen}
			o.tlive++
			return s
		}
	}
}

// grow doubles the table, rehashing this epoch's live slots.
func (o *Overlay) grow() {
	old, ogen := o.tab, o.tgen
	o.tab = make([]ovSlot, 2*len(old))
	o.tgen = 1
	m := uint32(len(o.tab) - 1)
	for i := range old {
		s := &old[i]
		if s.gen != ogen {
			continue
		}
		for j := (s.word * ovHashMul) & m; ; j = (j + 1) & m {
			if o.tab[j].gen != 1 {
				o.tab[j] = ovSlot{word: s.word, data: s.data, mask: s.mask, gen: 1}
				break
			}
		}
	}
}

// ReadReg implements State.
func (o *Overlay) ReadReg(r int) uint32 {
	if o.regDirty&(1<<uint(r)) != 0 {
		return o.regs[r]
	}
	return o.base.ReadReg(r)
}

// WriteReg implements State.
func (o *Overlay) WriteReg(r int, v uint32) {
	if r == isa.Zero {
		return
	}
	o.regDirty |= 1 << uint(r)
	o.regs[r] = v
}

// ReadMem8 implements State.
func (o *Overlay) ReadMem8(addr uint32) byte {
	if s := o.find(addr >> 2); s != nil {
		lane := addr & 3
		if s.mask&(1<<lane) != 0 {
			return byte(s.data >> (8 * lane))
		}
	}
	return o.base.ReadMem8(addr)
}

// WriteMem8 implements State.
func (o *Overlay) WriteMem8(addr uint32, v byte) {
	s := o.slot(addr >> 2)
	lane := addr & 3
	s.data = s.data&^(0xFF<<(8*lane)) | uint32(v)<<(8*lane)
	s.mask |= 1 << lane
}

// ReadMem16 implements State.
func (o *Overlay) ReadMem16(addr uint32) uint16 {
	return uint16(o.ReadMem8(addr)) | uint16(o.ReadMem8(addr+1))<<8
}

// WriteMem16 implements State.
func (o *Overlay) WriteMem16(addr uint32, v uint16) {
	o.WriteMem8(addr, byte(v))
	o.WriteMem8(addr+1, byte(v>>8))
}

// ReadMem32 implements State. Aligned reads (the LW case — exec rejects
// misaligned word accesses) are one slot lookup; a partially dirty word
// merges with the live base through the lane mask.
func (o *Overlay) ReadMem32(addr uint32) uint32 {
	if addr&3 == 0 {
		s := o.find(addr >> 2)
		if s == nil {
			return o.base.ReadMem32(addr)
		}
		if s.mask == 0xF {
			return s.data
		}
		em := maskExpand[s.mask]
		return s.data&em | o.base.ReadMem32(addr)&^em
	}
	return uint32(o.ReadMem16(addr)) | uint32(o.ReadMem16(addr+2))<<16
}

// WriteMem32 implements State. The aligned case dirties one whole word.
func (o *Overlay) WriteMem32(addr uint32, v uint32) {
	if addr&3 == 0 {
		s := o.slot(addr >> 2)
		s.data = v
		s.mask = 0xF
		return
	}
	o.WriteMem16(addr, uint16(v))
	o.WriteMem16(addr+2, uint16(v>>16))
}
