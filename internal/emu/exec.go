package emu

import (
	"errors"
	"fmt"

	"retstack/internal/isa"
)

// Execution errors. The architectural machine treats them as fatal; the
// pipeline tolerates them on wrong paths (a wrong path may fetch data as
// code or compute garbage addresses) by turning the instruction into an
// effect-free bubble.
var (
	ErrInvalidInst = errors.New("emu: invalid instruction")
	ErrMisaligned  = errors.New("emu: misaligned memory access")
	ErrBadSyscall  = errors.New("emu: unknown syscall code")
)

// SyscallCode enumerates the minimal OS interface.
type SyscallCode uint8

const (
	SysNone    SyscallCode = 0
	SysExit    SyscallCode = 1 // a0 = exit code
	SysPutInt  SyscallCode = 2 // a0 = integer printed in decimal
	SysPutChar SyscallCode = 3 // a0 = byte written to output
)

// Outcome describes everything the pipeline needs to know about one
// executed instruction: the next PC, control-flow resolution, the register
// result, and the memory access (if any).
type Outcome struct {
	NextPC uint32

	Control bool   // the instruction is a control transfer
	Taken   bool   // control transfer left the fall-through path
	Target  uint32 // resolved destination when Taken

	Dest  int // architectural destination register, -1 if none
	Value uint32

	IsLoad   bool
	IsStore  bool
	Addr     uint32
	Size     uint8 // access size in bytes (1, 2, 4)
	StoreVal uint32

	Syscall    SyscallCode
	SyscallArg uint32
}

// Exec executes one instruction located at pc against s and returns its
// outcome. It performs register and memory side effects on s but does NOT
// perform syscall side effects (printing, halting); those are reported in
// the Outcome so the caller can apply them only on the architectural path.
func Exec(s State, pc uint32, in isa.Inst) (Outcome, error) {
	out := Outcome{NextPC: pc + isa.WordBytes, Dest: -1}
	rs := s.ReadReg(int(in.Rs))
	rt := s.ReadReg(int(in.Rt))

	setDest := func(r int, v uint32) {
		if r != isa.Zero {
			s.WriteReg(r, v)
			out.Dest = r
			out.Value = v
		}
	}
	takeBranch := func(cond bool) {
		out.Control = true
		if cond {
			out.Taken = true
			out.Target = in.DirectTarget(pc)
			out.NextPC = out.Target
		}
	}

	switch in.Op {
	case isa.OpADD:
		setDest(int(in.Rd), rs+rt)
	case isa.OpSUB:
		setDest(int(in.Rd), rs-rt)
	case isa.OpAND:
		setDest(int(in.Rd), rs&rt)
	case isa.OpOR:
		setDest(int(in.Rd), rs|rt)
	case isa.OpXOR:
		setDest(int(in.Rd), rs^rt)
	case isa.OpNOR:
		setDest(int(in.Rd), ^(rs | rt))
	case isa.OpSLT:
		setDest(int(in.Rd), boolTo32(int32(rs) < int32(rt)))
	case isa.OpSLTU:
		setDest(int(in.Rd), boolTo32(rs < rt))
	case isa.OpSLL:
		setDest(int(in.Rd), rt<<in.Shamt)
	case isa.OpSRL:
		setDest(int(in.Rd), rt>>in.Shamt)
	case isa.OpSRA:
		setDest(int(in.Rd), uint32(int32(rt)>>in.Shamt))
	case isa.OpSLLV:
		setDest(int(in.Rd), rt<<(rs&31))
	case isa.OpSRLV:
		setDest(int(in.Rd), rt>>(rs&31))
	case isa.OpSRAV:
		setDest(int(in.Rd), uint32(int32(rt)>>(rs&31)))
	case isa.OpMUL:
		setDest(int(in.Rd), rs*rt)
	case isa.OpDIV:
		// Division by zero yields zero (defined so wrong paths can never
		// fault); signed overflow (MinInt32 / -1) wraps.
		if rt == 0 {
			setDest(int(in.Rd), 0)
		} else {
			setDest(int(in.Rd), uint32(int32(rs)/int32(rt)))
		}
	case isa.OpREM:
		if rt == 0 {
			setDest(int(in.Rd), 0)
		} else {
			setDest(int(in.Rd), uint32(int32(rs)%int32(rt)))
		}

	case isa.OpADDI:
		setDest(int(in.Rt), rs+uint32(in.Imm))
	case isa.OpANDI:
		setDest(int(in.Rt), rs&uint32(in.Imm))
	case isa.OpORI:
		setDest(int(in.Rt), rs|uint32(in.Imm))
	case isa.OpXORI:
		setDest(int(in.Rt), rs^uint32(in.Imm))
	case isa.OpSLTI:
		setDest(int(in.Rt), boolTo32(int32(rs) < in.Imm))
	case isa.OpSLTIU:
		setDest(int(in.Rt), boolTo32(rs < uint32(in.Imm)))
	case isa.OpLUI:
		setDest(int(in.Rt), uint32(in.Imm)<<16)

	case isa.OpLW, isa.OpLH, isa.OpLHU, isa.OpLB, isa.OpLBU:
		addr := rs + uint32(in.Imm)
		out.IsLoad, out.Addr = true, addr
		var v uint32
		switch in.Op {
		case isa.OpLW:
			if addr&3 != 0 {
				return out, fmt.Errorf("%w: lw @%#x", ErrMisaligned, addr)
			}
			out.Size = 4
			v = s.ReadMem32(addr)
		case isa.OpLH, isa.OpLHU:
			if addr&1 != 0 {
				return out, fmt.Errorf("%w: lh @%#x", ErrMisaligned, addr)
			}
			out.Size = 2
			h := s.ReadMem16(addr)
			if in.Op == isa.OpLH {
				v = uint32(int32(int16(h)))
			} else {
				v = uint32(h)
			}
		case isa.OpLB, isa.OpLBU:
			out.Size = 1
			b := s.ReadMem8(addr)
			if in.Op == isa.OpLB {
				v = uint32(int32(int8(b)))
			} else {
				v = uint32(b)
			}
		}
		setDest(int(in.Rt), v)

	case isa.OpSW, isa.OpSH, isa.OpSB:
		addr := rs + uint32(in.Imm)
		out.IsStore, out.Addr, out.StoreVal = true, addr, rt
		switch in.Op {
		case isa.OpSW:
			if addr&3 != 0 {
				return out, fmt.Errorf("%w: sw @%#x", ErrMisaligned, addr)
			}
			out.Size = 4
			s.WriteMem32(addr, rt)
		case isa.OpSH:
			if addr&1 != 0 {
				return out, fmt.Errorf("%w: sh @%#x", ErrMisaligned, addr)
			}
			out.Size = 2
			s.WriteMem16(addr, uint16(rt))
		case isa.OpSB:
			out.Size = 1
			s.WriteMem8(addr, byte(rt))
		}

	case isa.OpBEQ:
		takeBranch(rs == rt)
	case isa.OpBNE:
		takeBranch(rs != rt)
	case isa.OpBLEZ:
		takeBranch(int32(rs) <= 0)
	case isa.OpBGTZ:
		takeBranch(int32(rs) > 0)
	case isa.OpBLTZ:
		takeBranch(int32(rs) < 0)
	case isa.OpBGEZ:
		takeBranch(int32(rs) >= 0)

	case isa.OpJ:
		out.Control, out.Taken = true, true
		out.Target = in.DirectTarget(pc)
		out.NextPC = out.Target
	case isa.OpJAL:
		out.Control, out.Taken = true, true
		out.Target = in.DirectTarget(pc)
		out.NextPC = out.Target
		setDest(isa.RA, in.ReturnAddress(pc))
	case isa.OpJR:
		out.Control, out.Taken = true, true
		out.Target = rs
		out.NextPC = rs
	case isa.OpJALR:
		out.Control, out.Taken = true, true
		out.Target = rs
		out.NextPC = rs
		setDest(int(in.Rd), in.ReturnAddress(pc))

	case isa.OpSYSCALL:
		code := SyscallCode(s.ReadReg(isa.V0))
		arg := s.ReadReg(isa.A0)
		switch code {
		case SysExit, SysPutInt, SysPutChar:
			out.Syscall, out.SyscallArg = code, arg
		default:
			return out, fmt.Errorf("%w: v0=%d", ErrBadSyscall, code)
		}

	default:
		return out, fmt.Errorf("%w: %#08x", ErrInvalidInst, in.Raw)
	}
	return out, nil
}

func boolTo32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
