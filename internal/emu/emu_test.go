package emu

import (
	"testing"
	"testing/quick"

	"retstack/internal/isa"
	"retstack/internal/program"
)

func TestMemorySparse(t *testing.T) {
	m := NewMemory()
	if got := m.Read32(0x1234); got != 0 {
		t.Errorf("unmapped read = %#x, want 0", got)
	}
	if m.PageCount() != 0 {
		t.Error("read allocated a page")
	}
	m.Write32(0x1000, 0xDEADBEEF)
	if got := m.Read32(0x1000); got != 0xDEADBEEF {
		t.Errorf("read back = %#x", got)
	}
	if got := m.Read8(0x1000); got != 0xEF {
		t.Errorf("little-endian low byte = %#x, want 0xEF", got)
	}
	m.Write16(0x2000, 0xBEEF)
	if got := m.Read16(0x2000); got != 0xBEEF {
		t.Errorf("halfword = %#x", got)
	}
	// Cross-page word access.
	m.Write32(pageSize-2, 0x11223344)
	if got := m.Read32(pageSize - 2); got != 0x11223344 {
		t.Errorf("cross-page word = %#x", got)
	}
}

func TestMemoryQuickWordRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr, v uint32) bool {
		m.Write32(addr, v)
		return m.Read32(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// execOne runs a single instruction on a fresh machine with the given
// pre-state mutation and returns the machine.
func execOne(t *testing.T, in isa.Inst, setup func(*Machine)) (*Machine, Outcome) {
	t.Helper()
	m := NewMachine()
	m.PC = 0x1000
	if setup != nil {
		setup(m)
	}
	out, err := Exec(m, m.PC, in)
	if err != nil {
		t.Fatalf("exec %s: %v", in, err)
	}
	return m, out
}

func TestALUSemantics(t *testing.T) {
	cases := []struct {
		in     isa.Inst
		rs, rt uint32
		want   uint32
	}{
		{isa.R(isa.OpADD, isa.T2, isa.T0, isa.T1), 5, 7, 12},
		{isa.R(isa.OpSUB, isa.T2, isa.T0, isa.T1), 5, 7, 0xFFFFFFFE},
		{isa.R(isa.OpAND, isa.T2, isa.T0, isa.T1), 0xF0F0, 0xFF00, 0xF000},
		{isa.R(isa.OpOR, isa.T2, isa.T0, isa.T1), 0xF0F0, 0x0F00, 0xFFF0},
		{isa.R(isa.OpXOR, isa.T2, isa.T0, isa.T1), 0xFF, 0x0F, 0xF0},
		{isa.R(isa.OpNOR, isa.T2, isa.T0, isa.T1), 0, 0, 0xFFFFFFFF},
		{isa.R(isa.OpSLT, isa.T2, isa.T0, isa.T1), 0xFFFFFFFF, 0, 1},  // -1 < 0
		{isa.R(isa.OpSLTU, isa.T2, isa.T0, isa.T1), 0xFFFFFFFF, 0, 0}, // max > 0
		{isa.R(isa.OpMUL, isa.T2, isa.T0, isa.T1), 6, 7, 42},
		{isa.R(isa.OpDIV, isa.T2, isa.T0, isa.T1), 42, 5, 8},
		{isa.R(isa.OpDIV, isa.T2, isa.T0, isa.T1), 42, 0, 0}, // div-by-zero -> 0
		{isa.R(isa.OpREM, isa.T2, isa.T0, isa.T1), 42, 5, 2},
		{isa.R(isa.OpREM, isa.T2, isa.T0, isa.T1), 42, 0, 0},
		{isa.R(isa.OpSLLV, isa.T2, isa.T0, isa.T1), 4, 1, 16}, // rt << rs
		{isa.R(isa.OpSRAV, isa.T2, isa.T0, isa.T1), 1, 0x80000000, 0xC0000000},
	}
	for _, c := range cases {
		m, out := execOne(t, c.in, func(m *Machine) {
			m.Regs[isa.T0] = c.rs
			m.Regs[isa.T1] = c.rt
		})
		if m.Regs[isa.T2] != c.want {
			t.Errorf("%s (rs=%#x rt=%#x): got %#x, want %#x", c.in, c.rs, c.rt, m.Regs[isa.T2], c.want)
		}
		if out.Dest != isa.T2 || out.Value != c.want {
			t.Errorf("%s: outcome dest/value mismatch", c.in)
		}
	}
}

func TestShiftAndImmediates(t *testing.T) {
	m, _ := execOne(t, isa.Shift(isa.OpSRA, isa.T2, isa.T0, 4), func(m *Machine) {
		m.Regs[isa.T0] = 0x80000000
	})
	if m.Regs[isa.T2] != 0xF8000000 {
		t.Errorf("sra = %#x", m.Regs[isa.T2])
	}
	m, _ = execOne(t, isa.I(isa.OpADDI, isa.T2, isa.T0, -3), func(m *Machine) {
		m.Regs[isa.T0] = 10
	})
	if m.Regs[isa.T2] != 7 {
		t.Errorf("addi = %d", m.Regs[isa.T2])
	}
	m, _ = execOne(t, isa.Lui(isa.T2, 0xABCD), nil)
	if m.Regs[isa.T2] != 0xABCD0000 {
		t.Errorf("lui = %#x", m.Regs[isa.T2])
	}
	m, _ = execOne(t, isa.I(isa.OpSLTIU, isa.T2, isa.T0, -1), func(m *Machine) {
		m.Regs[isa.T0] = 5
	})
	// sltiu compares against sign-extended-then-unsigned immediate (huge).
	if m.Regs[isa.T2] != 1 {
		t.Errorf("sltiu = %d, want 1", m.Regs[isa.T2])
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	m, out := execOne(t, isa.I(isa.OpADDI, isa.Zero, isa.Zero, 99), nil)
	if m.Regs[isa.Zero] != 0 {
		t.Error("$zero was written")
	}
	if out.Dest != -1 {
		t.Error("write to $zero should report no destination")
	}
}

func TestLoadsStores(t *testing.T) {
	m, out := execOne(t, isa.Mem(isa.OpSW, isa.T0, isa.T1, 4), func(m *Machine) {
		m.Regs[isa.T0] = 0xCAFEBABE
		m.Regs[isa.T1] = 0x2000
	})
	if !out.IsStore || out.Addr != 0x2004 || out.Size != 4 {
		t.Errorf("sw outcome = %+v", out)
	}
	if got := m.Mem.Read32(0x2004); got != 0xCAFEBABE {
		t.Errorf("stored %#x", got)
	}

	m, out = execOne(t, isa.Mem(isa.OpLB, isa.T2, isa.T1, 0), func(m *Machine) {
		m.Regs[isa.T1] = 0x3000
		m.Mem.Write8(0x3000, 0x80)
	})
	if !out.IsLoad || m.Regs[isa.T2] != 0xFFFFFF80 {
		t.Errorf("lb sign extension: got %#x", m.Regs[isa.T2])
	}
	m, _ = execOne(t, isa.Mem(isa.OpLBU, isa.T2, isa.T1, 0), func(m *Machine) {
		m.Regs[isa.T1] = 0x3000
		m.Mem.Write8(0x3000, 0x80)
	})
	if m.Regs[isa.T2] != 0x80 {
		t.Errorf("lbu zero extension: got %#x", m.Regs[isa.T2])
	}
	m, _ = execOne(t, isa.Mem(isa.OpLH, isa.T2, isa.T1, 0), func(m *Machine) {
		m.Regs[isa.T1] = 0x3000
		m.Mem.Write16(0x3000, 0x8000)
	})
	if m.Regs[isa.T2] != 0xFFFF8000 {
		t.Errorf("lh sign extension: got %#x", m.Regs[isa.T2])
	}
}

func TestMisalignedAccess(t *testing.T) {
	m := NewMachine()
	m.Regs[isa.T1] = 0x2001
	if _, err := Exec(m, 0, isa.Mem(isa.OpLW, isa.T0, isa.T1, 0)); err == nil {
		t.Error("misaligned lw should error")
	}
	if _, err := Exec(m, 0, isa.Mem(isa.OpSH, isa.T0, isa.T1, 0)); err == nil {
		t.Error("misaligned sh should error")
	}
}

func TestBranchesAndJumps(t *testing.T) {
	const pc = 0x1000
	cases := []struct {
		in    isa.Inst
		rs    uint32
		rt    uint32
		taken bool
	}{
		{isa.Branch(isa.OpBEQ, isa.T0, isa.T1, 16), 5, 5, true},
		{isa.Branch(isa.OpBEQ, isa.T0, isa.T1, 16), 5, 6, false},
		{isa.Branch(isa.OpBNE, isa.T0, isa.T1, 16), 5, 6, true},
		{isa.Branch(isa.OpBLEZ, isa.T0, 0, 16), 0, 0, true},
		{isa.Branch(isa.OpBLEZ, isa.T0, 0, 16), 1, 0, false},
		{isa.Branch(isa.OpBGTZ, isa.T0, 0, 16), 1, 0, true},
		{isa.Branch(isa.OpBLTZ, isa.T0, 0, 16), 0xFFFFFFFF, 0, true},
		{isa.Branch(isa.OpBGEZ, isa.T0, 0, 16), 0, 0, true},
	}
	for _, c := range cases {
		_, out := execOne(t, c.in, func(m *Machine) {
			m.Regs[isa.T0] = c.rs
			m.Regs[isa.T1] = c.rt
		})
		if !out.Control {
			t.Errorf("%s: not marked control", c.in)
		}
		if out.Taken != c.taken {
			t.Errorf("%s (rs=%d rt=%d): taken=%v, want %v", c.in, int32(c.rs), int32(c.rt), out.Taken, c.taken)
		}
		wantNext := uint32(pc + 4)
		if c.taken {
			wantNext = pc + 4 + 16*4
		}
		if out.NextPC != wantNext {
			t.Errorf("%s: next=%#x want %#x", c.in, out.NextPC, wantNext)
		}
	}

	m, out := execOne(t, isa.Jump(isa.OpJAL, 0x4000), nil)
	if out.Target != 0x4000 || m.Regs[isa.RA] != pc+4 {
		t.Errorf("jal: target=%#x ra=%#x", out.Target, m.Regs[isa.RA])
	}
	_, out = execOne(t, isa.Jr(isa.RA), func(m *Machine) { m.Regs[isa.RA] = 0xBEEF0 })
	if out.Target != 0xBEEF0 || !out.Taken {
		t.Errorf("jr: %+v", out)
	}
	m, out = execOne(t, isa.Jalr(isa.RA, isa.T9), func(m *Machine) { m.Regs[isa.T9] = 0x5000 })
	if out.Target != 0x5000 || m.Regs[isa.RA] != pc+4 {
		t.Errorf("jalr: target=%#x ra=%#x", out.Target, m.Regs[isa.RA])
	}
}

func TestSyscallOutcomes(t *testing.T) {
	_, out := execOne(t, isa.Syscall(), func(m *Machine) {
		m.Regs[isa.V0] = uint32(SysPutInt)
		m.Regs[isa.A0] = 42
	})
	if out.Syscall != SysPutInt || out.SyscallArg != 42 {
		t.Errorf("syscall outcome = %+v", out)
	}
	m := NewMachine()
	m.Regs[isa.V0] = 99
	if _, err := Exec(m, 0, isa.Syscall()); err == nil {
		t.Error("unknown syscall should error")
	}
}

func TestInvalidInstruction(t *testing.T) {
	m := NewMachine()
	if _, err := Exec(m, 0, isa.Decode(0xFFFFFFFF)); err == nil {
		t.Error("invalid word should error")
	}
}

// TestFactorialProgram runs a recursive factorial through the Builder and
// the architectural machine end to end.
func TestFactorialProgram(t *testing.T) {
	b := program.NewBuilder()
	b.Label("main")
	b.Li(isa.A0, 10)
	b.Jal("fact")
	// print result, exit
	b.Emit(isa.R(isa.OpADD, isa.A0, isa.V0, isa.Zero))
	b.Li(isa.V0, int32(SysPutInt))
	b.Emit(isa.Syscall())
	b.Li(isa.V0, int32(SysExit))
	b.Li(isa.A0, 0)
	b.Emit(isa.Syscall())

	// fact(n): if n <= 1 return 1 else return n * fact(n-1)
	b.Label("fact")
	b.Emit(
		isa.I(isa.OpADDI, isa.SP, isa.SP, -8),
		isa.Mem(isa.OpSW, isa.RA, isa.SP, 0),
		isa.Mem(isa.OpSW, isa.A0, isa.SP, 4),
	)
	b.BranchTo(isa.OpBGTZ, isa.A0, 0, "fact_rec")
	b.Li(isa.V0, 1)
	b.J("fact_ret")
	b.Label("fact_rec")
	b.Emit(isa.I(isa.OpSLTI, isa.T0, isa.A0, 2)) // n < 2 ?
	b.BranchTo(isa.OpBNE, isa.T0, isa.Zero, "fact_base")
	b.Emit(isa.I(isa.OpADDI, isa.A0, isa.A0, -1))
	b.Jal("fact")
	b.Emit(
		isa.Mem(isa.OpLW, isa.A0, isa.SP, 4),
		isa.R(isa.OpMUL, isa.V0, isa.A0, isa.V0),
	)
	b.J("fact_ret")
	b.Label("fact_base")
	b.Li(isa.V0, 1)
	b.Label("fact_ret")
	b.Emit(
		isa.Mem(isa.OpLW, isa.RA, isa.SP, 0),
		isa.I(isa.OpADDI, isa.SP, isa.SP, 8),
		isa.Jr(isa.RA),
	)

	im, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	m.Load(im)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !m.Halted || m.ExitCode != 0 {
		t.Fatalf("halted=%v exit=%d", m.Halted, m.ExitCode)
	}
	if got, want := m.Output(), "3628800\n"; got != want {
		t.Errorf("output %q, want %q", got, want)
	}
	// main calls fact(10); fact(10)..fact(2) each recurse once: 10 calls.
	if m.Calls != 10 {
		t.Errorf("calls = %d, want 10", m.Calls)
	}
	if m.Returns != m.Calls {
		t.Errorf("returns = %d, want %d", m.Returns, m.Calls)
	}
	if m.MaxDepth != 10 {
		t.Errorf("max depth = %d, want 10", m.MaxDepth)
	}
}

func TestOverlayIsolation(t *testing.T) {
	m := NewMachine()
	m.Regs[isa.T0] = 100
	m.Mem.Write32(0x1000, 7)

	o := NewOverlay(m)
	o.WriteReg(isa.T0, 5)
	o.WriteMem32(0x1000, 99)
	if o.ReadReg(isa.T0) != 5 || o.ReadMem32(0x1000) != 99 {
		t.Error("overlay does not see its own writes")
	}
	if m.Regs[isa.T0] != 100 || m.Mem.Read32(0x1000) != 7 {
		t.Error("overlay leaked into base")
	}
	// Fall-through reads.
	if o.ReadReg(isa.T1) != 0 || o.ReadMem32(0x2000) != 0 {
		t.Error("overlay fall-through broken")
	}
	m.Regs[isa.T1] = 55
	if o.ReadReg(isa.T1) != 55 {
		t.Error("overlay should read base for clean registers")
	}
	if !o.Dirty() {
		t.Error("overlay should be dirty")
	}
	o.Reset()
	if o.Dirty() || o.ReadReg(isa.T0) != 100 || o.ReadMem32(0x1000) != 7 {
		t.Error("reset did not restore base view")
	}
	// $zero stays zero even through an overlay.
	o.WriteReg(isa.Zero, 9)
	if o.ReadReg(isa.Zero) != 0 {
		t.Error("overlay wrote $zero")
	}
}

// TestOverlayQuick cross-checks the overlay against a brute-force model.
func TestOverlayQuick(t *testing.T) {
	type wr struct {
		Addr uint32
		Val  byte
	}
	f := func(baseWrites, specWrites []wr, probe []uint32) bool {
		m := NewMachine()
		model := map[uint32]byte{}
		for _, w := range baseWrites {
			m.Mem.Write8(w.Addr, w.Val)
			model[w.Addr] = w.Val
		}
		o := NewOverlay(m)
		for _, w := range specWrites {
			o.WriteMem8(w.Addr, w.Val)
			model[w.Addr] = w.Val
		}
		for _, a := range probe {
			if o.ReadMem8(a) != model[a] {
				return false
			}
		}
		for _, w := range specWrites {
			if o.ReadMem8(w.Addr) != model[w.Addr] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMachineRunLimits(t *testing.T) {
	// An infinite loop must stop at the instruction budget.
	b := program.NewBuilder()
	b.Label("main")
	b.Label("loop")
	b.J("loop")
	im, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	m.Load(im)
	n, err := m.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 || m.Halted {
		t.Errorf("n=%d halted=%v", n, m.Halted)
	}
	// Stepping a halted machine errors.
	m2 := NewMachine()
	m2.Halted = true
	if _, _, err := m2.Step(); err == nil {
		t.Error("step after halt should error")
	}
}

func TestOverlayClone(t *testing.T) {
	m := NewMachine()
	m.Regs[isa.T0] = 1
	m.Mem.Write32(0x100, 7)

	o := NewOverlay(m)
	o.WriteReg(isa.T1, 42)
	o.WriteMem32(0x100, 8)

	c := o.Clone()
	// Clone sees the parent's speculative state...
	if c.ReadReg(isa.T1) != 42 || c.ReadMem32(0x100) != 8 {
		t.Error("clone missing parent's speculative state")
	}
	// ...and diverges independently afterwards.
	c.WriteReg(isa.T1, 99)
	c.WriteMem32(0x100, 9)
	if o.ReadReg(isa.T1) != 42 || o.ReadMem32(0x100) != 8 {
		t.Error("clone writes leaked into the original overlay")
	}
	o.WriteReg(isa.T2, 5)
	if c.ReadReg(isa.T2) != 0 {
		t.Error("post-clone original writes must not appear in the clone")
	}
	// Both still read through to clean base state.
	m.Regs[isa.T3] = 77
	if o.ReadReg(isa.T3) != 77 || c.ReadReg(isa.T3) != 77 {
		t.Error("read-through broken after clone")
	}
}

// TestDepthHistogram: the machine's call-depth histogram feeds Table 2.
func TestDepthHistogram(t *testing.T) {
	m := NewMachine()
	call := isa.Jump(isa.OpJAL, 0)
	ret := isa.Jr(isa.RA)
	// depth sequence: 1,2,3 then unwind, then 1.
	m.NoteRetired(call)
	m.NoteRetired(call)
	m.NoteRetired(call)
	m.NoteRetired(ret)
	m.NoteRetired(ret)
	m.NoteRetired(ret)
	m.NoteRetired(call)
	if m.DepthHist.Total() != 4 {
		t.Errorf("histogram total = %d, want 4", m.DepthHist.Total())
	}
	if m.DepthHist.Max() != 3 {
		t.Errorf("max depth = %d, want 3", m.DepthHist.Max())
	}
	if m.DepthHist.Count(1) != 2 {
		t.Errorf("count(1) = %d, want 2", m.DepthHist.Count(1))
	}
}
