package emu

import (
	"testing"

	"retstack/internal/asm"
	"retstack/internal/isa"
	"retstack/internal/program"
)

// blockWorkload is call-, branch-, and memory-dense: short and long basic
// blocks, an LCG whose parity steers a hard-to-predict early return, stack
// traffic, and both print and exit syscalls — every path the block
// dispatcher has (fast body, fast terminator, Step fallback) gets exercised.
const blockWorkload = `
    .data
seed:
    .word 12345
    .text
main:
    li $s0, 400          # iterations
    li $s1, 0            # accumulator
outer:
    jal work
    add $s1, $s1, $v0
    addi $s0, $s0, -1
    bgtz $s0, outer
    move $a0, $s1
    li $v0, 2            # print the accumulator, then exit with its low bits
    syscall
    andi $a0, $s1, 255
    li $v0, 1
    syscall
work:
    addi $sp, $sp, -4
    sw $ra, 0($sp)
    jal rand
    andi $t0, $v0, 1
    beqz $t0, work_deep
    li $v0, 1
    lw $ra, 0($sp)
    addi $sp, $sp, 4
    ret
work_deep:
    jal leaf
    add $v0, $v0, $v0
    jal leaf
    add $v0, $v0, $v0
    lw $ra, 0($sp)
    addi $sp, $sp, 4
    ret
rand:
    lw $t0, seed
    li $t1, 1103515245
    mul $t0, $t0, $t1
    addi $t0, $t0, 12345
    srl $v0, $t0, 16
    sw $t0, seed
    ret
leaf:
    li $v0, 7
    ret
`

func blockImage(t testing.TB) *program.Image {
	t.Helper()
	im, err := asm.Assemble(blockWorkload)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// loadPair returns two machines on fresh copies of the same source: one with
// block dispatch (the default), one forced through the single-step loop.
// Separate images keep the lazy block builds independent too.
func loadPair(t testing.TB, src string) (blocks, steps *Machine) {
	t.Helper()
	for _, noBlocks := range []bool{false, true} {
		im, err := asm.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		m := NewMachine()
		m.Load(im)
		if noBlocks {
			m.DisableBlocks()
			steps = m
		} else {
			blocks = m
		}
	}
	return blocks, steps
}

// compareMachines checks every architectural and observational field that
// the block dispatcher promises to keep bit-identical to single-stepping.
func compareMachines(t *testing.T, blocks, steps *Machine) {
	t.Helper()
	if blocks.Regs != steps.Regs {
		t.Errorf("registers diverge:\nblocks: %v\nsteps:  %v", blocks.Regs, steps.Regs)
	}
	if blocks.PC != steps.PC {
		t.Errorf("PC: blocks %#x, steps %#x", blocks.PC, steps.PC)
	}
	if blocks.Halted != steps.Halted || blocks.ExitCode != steps.ExitCode {
		t.Errorf("halt state: blocks (%v, %d), steps (%v, %d)",
			blocks.Halted, blocks.ExitCode, steps.Halted, steps.ExitCode)
	}
	if blocks.Output() != steps.Output() {
		t.Errorf("output: blocks %q, steps %q", blocks.Output(), steps.Output())
	}
	if blocks.InstCount != steps.InstCount {
		t.Errorf("InstCount: blocks %d, steps %d", blocks.InstCount, steps.InstCount)
	}
	if blocks.ClassCounts != steps.ClassCounts {
		t.Errorf("ClassCounts: blocks %v, steps %v", blocks.ClassCounts, steps.ClassCounts)
	}
	if blocks.Calls != steps.Calls || blocks.Returns != steps.Returns ||
		blocks.MaxDepth != steps.MaxDepth || blocks.SumDepth != steps.SumDepth {
		t.Errorf("depth stats: blocks (%d %d %d %d), steps (%d %d %d %d)",
			blocks.Calls, blocks.Returns, blocks.MaxDepth, blocks.SumDepth,
			steps.Calls, steps.Returns, steps.MaxDepth, steps.SumDepth)
	}
	if blocks.PredecodeHits != steps.PredecodeHits ||
		blocks.PredecodeFallbacks != steps.PredecodeFallbacks {
		t.Errorf("predecode counters: blocks (%d, %d), steps (%d, %d)",
			blocks.PredecodeHits, blocks.PredecodeFallbacks,
			steps.PredecodeHits, steps.PredecodeFallbacks)
	}
	if bi, si := blocks.Mem.CodeInvalidations(), steps.Mem.CodeInvalidations(); bi != si {
		t.Errorf("code invalidations: blocks %d, steps %d", bi, si)
	}
}

func TestRunBlocksMatchesSteps(t *testing.T) {
	blocks, steps := loadPair(t, blockWorkload)
	if _, err := blocks.Run(0); err != nil {
		t.Fatal(err)
	}
	if _, err := steps.Run(0); err != nil {
		t.Fatal(err)
	}
	if !blocks.Halted {
		t.Fatal("workload did not halt")
	}
	if blocks.BlockHits == 0 || blocks.BlockBuilds == 0 {
		t.Fatalf("block dispatch did not engage: hits=%d builds=%d",
			blocks.BlockHits, blocks.BlockBuilds)
	}
	if steps.BlockHits != 0 || steps.BlockBuilds != 0 {
		t.Fatalf("DisableBlocks machine dispatched blocks: hits=%d builds=%d",
			steps.BlockHits, steps.BlockBuilds)
	}
	compareMachines(t, blocks, steps)
}

// TestRunBlocksChunkedBudget drives the block machine with awkward odd
// budgets so Run stops mid-body and resumes at a block suffix, while the
// reference machine runs in one shot. Every budget boundary must be exact.
func TestRunBlocksChunkedBudget(t *testing.T) {
	blocks, steps := loadPair(t, blockWorkload)
	if _, err := steps.Run(0); err != nil {
		t.Fatal(err)
	}
	chunks := []uint64{1, 2, 3, 5, 7, 11, 13, 1, 4, 9}
	var total uint64
	for i := 0; !blocks.Halted; i++ {
		want := chunks[i%len(chunks)]
		n, err := blocks.Run(want)
		if err != nil {
			t.Fatal(err)
		}
		if n > want {
			t.Fatalf("Run(%d) executed %d instructions", want, n)
		}
		if n < want && !blocks.Halted {
			t.Fatalf("Run(%d) stopped early (%d) without halting", want, n)
		}
		total += n
	}
	if total != blocks.InstCount {
		t.Errorf("sum of chunk returns %d != InstCount %d", total, blocks.InstCount)
	}
	compareMachines(t, blocks, steps)
}

// selfModifyingSource patches an addi in its own text from inside the same
// basic block as the store, so a stale descriptor would retire the old
// immediate. Both dispatch modes must see the patched instruction and
// count exactly one code-region invalidation.
const selfModifyingSource = `
    .text
main:
    la $t0, site
    lw $t1, newinst
    sw $t1, 0($t0)       # dirties the code region mid-block
site:
    addi $v1, $zero, 7   # overwritten above with addi $v1, $zero, 42
    move $a0, $v1
    li $v0, 1
    syscall
newinst:
    .word 0x00000000     # patched in by TestBlocksSelfModifyingCode
`

func TestBlocksSelfModifyingCode(t *testing.T) {
	patch, err := isa.I(isa.OpADDI, isa.V1, isa.Zero, 42).Encode()
	if err != nil {
		t.Fatal(err)
	}
	run := func(noBlocks bool) *Machine {
		im, err := asm.Assemble(selfModifyingSource)
		if err != nil {
			t.Fatal(err)
		}
		m := NewMachine()
		m.Load(im)
		if noBlocks {
			m.DisableBlocks()
		}
		// Plant the replacement word in the text segment's literal pool.
		addr, ok := im.Symbol("newinst")
		if !ok {
			t.Fatal("newinst symbol missing")
		}
		m.Mem.Write32(addr, patch)
		if _, err := m.Run(0); err != nil {
			t.Fatal(err)
		}
		return m
	}
	blocks, steps := run(false), run(true)
	for name, m := range map[string]*Machine{"blocks": blocks, "steps": steps} {
		if !m.Halted || m.ExitCode != 42 {
			t.Errorf("%s: exit = (%v, %d), want (true, 42) — stale instruction retired",
				name, m.Halted, m.ExitCode)
		}
	}
	compareMachines(t, blocks, steps)
	// Planting the patch word itself already dirties the code region (one
	// invalidation before Run); the in-program store then hits an
	// already-dirty region, so the count stays 1.
	if got := blocks.Mem.CodeInvalidations(); got != 1 {
		t.Errorf("CodeInvalidations = %d, want 1", got)
	}
}

// TestBlockBuildsDeterministic pins the property that made BlockBuilds a
// per-machine counter: two machines sharing one image (and hence one lazily
// built block table) must report identical builds, regardless of which of
// them populated the shared table first.
func TestBlockBuildsDeterministic(t *testing.T) {
	im := blockImage(t)
	counts := make([]uint64, 2)
	for i := range counts {
		m := NewMachine()
		m.Load(im)
		if _, err := m.Run(0); err != nil {
			t.Fatal(err)
		}
		counts[i] = m.BlockBuilds
	}
	if counts[0] != counts[1] {
		t.Errorf("BlockBuilds diverge across machines on a shared image: %d vs %d",
			counts[0], counts[1])
	}
	if counts[0] == 0 {
		t.Error("BlockBuilds = 0 on a block-dispatching run")
	}
}

// spinSource never halts and never calls: the steady-state block loop.
const spinSource = `
    .data
cell:
    .word 1
    .text
main:
    lw $t0, cell
    addi $t0, $t0, 3
    mul $t1, $t0, $t0
    sw $t0, cell
    srl $t2, $t1, 4
    j main
`

// TestRunBlocksZeroAlloc pins the acceptance criterion that steady-state
// block dispatch allocates nothing: descriptors build once, then Run is
// pure table walking.
func TestRunBlocksZeroAlloc(t *testing.T) {
	im, err := asm.Assemble(spinSource)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	m.Load(im)
	if _, err := m.Run(10_000); err != nil { // warm: builds blocks, maps pages
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := m.Run(10_000); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state Run allocates %.1f objects per call, want 0", avg)
	}
}

// FuzzBlockEquivalence feeds arbitrary bytes to both dispatch modes as code
// — including garbage that decodes to invalid instructions, accidental
// stores over the program's own text, and misaligned accesses — and demands
// bit-identical state, output, counters, errors, and memory.
func FuzzBlockEquivalence(f *testing.F) {
	seed := func(src string) []byte {
		im, err := asm.Assemble(src)
		if err != nil {
			f.Fatal(err)
		}
		code, ok := im.CodeSegment()
		if !ok {
			f.Fatal("no code segment")
		}
		return code.Data
	}
	f.Add(seed(blockWorkload), uint32(1), uint32(2), uint32(3))
	f.Add(seed(selfModifyingSource), uint32(12345), uint32(0), uint32(0xFFFFFFFF))
	f.Add(seed(spinSource), uint32(7), uint32(0x80000000), uint32(3))
	f.Add([]byte{0xFF, 0xEE, 0xDD, 0xCC, 1, 2, 3, 4}, uint32(0), uint32(1), uint32(2))

	f.Fuzz(func(t *testing.T, code []byte, r1, r2, r3 uint32) {
		if len(code) < 4 {
			return
		}
		if len(code) > 4096 {
			code = code[:4096]
		}
		const budget = 4096
		run := func(noBlocks bool) (*Machine, uint64, string) {
			im := program.New()
			if err := im.AddSegment(program.DefaultTextBase, append([]byte(nil), code...)); err != nil {
				t.Fatal(err)
			}
			im.Entry = program.DefaultTextBase
			m := NewMachine()
			m.Load(im)
			if noBlocks {
				m.DisableBlocks()
			}
			m.Regs[isa.T0], m.Regs[isa.T1], m.Regs[isa.T2] = r1, r2, r3
			n, err := m.Run(budget)
			msg := ""
			if err != nil {
				msg = err.Error()
			}
			return m, n, msg
		}
		blocks, bn, berr := run(false)
		steps, sn, serr := run(true)
		if bn != sn {
			t.Errorf("executed count: blocks %d, steps %d", bn, sn)
		}
		if berr != serr {
			t.Errorf("errors diverge:\nblocks: %s\nsteps:  %s", berr, serr)
		}
		compareMachines(t, blocks, steps)
		// The code region itself (self-modifying stores must land the same).
		for off := uint32(0); off+4 <= uint32(len(code)); off += 4 {
			addr := program.DefaultTextBase + off
			if bw, sw := blocks.Mem.Read32(addr), steps.Mem.Read32(addr); bw != sw {
				t.Fatalf("code word at %#x: blocks %#08x, steps %#08x", addr, bw, sw)
			}
		}
		// Stack and globals windows, where stray stores most often land.
		for i := uint32(0); i < 64; i++ {
			lo, hi := program.DefaultGPBase+4*i, program.DefaultStackTop-4-4*i
			if bw, sw := blocks.Mem.Read32(lo), steps.Mem.Read32(lo); bw != sw {
				t.Fatalf("data word at %#x: blocks %#08x, steps %#08x", lo, bw, sw)
			}
			if bw, sw := blocks.Mem.Read32(hi), steps.Mem.Read32(hi); bw != sw {
				t.Fatalf("stack word at %#x: blocks %#08x, steps %#08x", hi, bw, sw)
			}
		}
	})
}

// emuBenchProgram has long straight-line bodies (unrolled LCG plus memory
// traffic) between calls and branches — representative of the functional
// workloads, and the shape block dispatch is built for.
const emuBenchProgram = `
    .data
seed:
    .word 12345
buf:
    .space 256
    .text
main:
    li $s0, 1000000
outer:
    jal mix
    jal mix
    addi $s0, $s0, -1
    bgtz $s0, outer
    li $a0, 0
    li $v0, 1
    syscall
mix:
    lw $t0, seed
    li $t1, 1103515245
    mul $t0, $t0, $t1
    addi $t0, $t0, 12345
    mul $t0, $t0, $t1
    addi $t0, $t0, 12345
    mul $t0, $t0, $t1
    addi $t0, $t0, 12345
    sw $t0, seed
    la $t3, buf
    andi $t2, $t0, 252
    add $t3, $t3, $t2
    lw $t4, 0($t3)
    add $t4, $t4, $t0
    sw $t4, 0($t3)
    srl $v0, $t0, 16
    ret
`

// benchEmuRun measures functional emulation throughput over a fixed
// instruction budget, one fresh machine per iteration (so per-run block
// builds are included), after one untimed warmup run.
func benchEmuRun(b *testing.B, noBlocks bool) {
	im, err := asm.Assemble(emuBenchProgram)
	if err != nil {
		b.Fatal(err)
	}
	const budget = 200_000
	runOnce := func() uint64 {
		m := NewMachine()
		m.Load(im)
		if noBlocks {
			m.DisableBlocks()
		}
		n, err := m.Run(budget)
		if err != nil {
			b.Fatal(err)
		}
		return n
	}
	runOnce() // untimed warmup: faults in the image and the shared block table
	b.ReportAllocs()
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		insts += runOnce()
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "simInsts/s")
}

func BenchmarkEmuRunBlocks(b *testing.B)   { benchEmuRun(b, false) }
func BenchmarkEmuRunNoBlocks(b *testing.B) { benchEmuRun(b, true) }
