package emu

import (
	"testing"

	"retstack/internal/isa"
)

// TestOverlaySpill pushes a wrong-path footprint through the inline slots
// into the open-addressed table and across generation resets, checking
// byte-exactness against the map reference the whole way.
func TestOverlaySpill(t *testing.T) {
	m := NewMachine()
	for i := uint32(0); i < 64; i++ {
		m.Mem.Write32(0x1000+4*i, 0x01010101*i)
	}
	o := NewOverlay(m)
	var spills uint64
	o.SetSpillCounter(&spills)
	r := NewMapOverlay(m)

	// Three epochs, each dirtying far more than ovInlineSlots words.
	for epoch := 0; epoch < 3; epoch++ {
		for i := uint32(0); i < 200; i++ {
			addr := 0x1000 + 4*((i*7)%211)
			o.WriteMem32(addr, i<<8|uint32(epoch))
			r.WriteMem32(addr, i<<8|uint32(epoch))
		}
		// Partial-word stores over spilled words.
		for i := uint32(0); i < 50; i++ {
			addr := 0x1000 + (i*13)%800
			o.WriteMem8(addr, byte(i))
			r.WriteMem8(addr, byte(i))
		}
		for a := uint32(0x0FF0); a < 0x1400; a++ {
			if o.ReadMem8(a) != r.ReadMem8(a) {
				t.Fatalf("epoch %d: ReadMem8(%#x) = %#x, map says %#x",
					epoch, a, o.ReadMem8(a), r.ReadMem8(a))
			}
		}
		for a := uint32(0x0FF0); a < 0x1400; a += 4 {
			if o.ReadMem32(a) != r.ReadMem32(a) {
				t.Fatalf("epoch %d: ReadMem32(%#x) = %#x, map says %#x",
					epoch, a, o.ReadMem32(a), r.ReadMem32(a))
			}
		}
		o.Reset()
		r.Reset()
		if o.Dirty() {
			t.Fatal("dirty after reset")
		}
		if o.ReadMem32(0x1000) != m.Mem.Read32(0x1000) {
			t.Fatal("reset did not restore base view of spilled word")
		}
	}
	if spills != 3 {
		t.Fatalf("spill counter = %d, want 3 (one per epoch)", spills)
	}
}

// TestOverlayBaseMutation pins the multipath hazard the per-byte masks
// exist for: clean bytes must read the *current* base, which the correct
// path keeps mutating while wrong-path overlays are live.
func TestOverlayBaseMutation(t *testing.T) {
	m := NewMachine()
	m.Mem.Write32(0x100, 0xAABBCCDD)
	o := NewOverlay(m)

	o.WriteMem8(0x101, 0x11) // dirty one byte of the word
	m.Mem.Write32(0x100, 0x44332211)
	want := uint32(0x44331111) // dirty byte wins, clean bytes follow base
	if got := o.ReadMem32(0x100); got != want {
		t.Fatalf("partial-dirty read = %#x, want %#x", got, want)
	}
	r := NewMapOverlay(m)
	r.WriteMem8(0x101, 0x11)
	if got := r.ReadMem32(0x100); got != want {
		t.Fatalf("map reference disagrees: %#x, want %#x", got, want)
	}
}

// TestOverlayCopyFromAndRebase covers the pooled-reuse entry points.
func TestOverlayCopyFromAndRebase(t *testing.T) {
	m := NewMachine()
	m.Regs[isa.T0] = 9
	src := NewOverlay(m)
	src.WriteReg(isa.T1, 42)
	for i := uint32(0); i < 40; i++ { // force src to spill
		src.WriteMem32(0x2000+8*i, i)
	}

	dst := NewOverlay(m)
	dst.WriteMem32(0x9000, 1) // stale state CopyFrom must discard
	dst.CopyFrom(src)
	if dst.ReadReg(isa.T1) != 42 || dst.ReadReg(isa.T0) != 9 {
		t.Fatal("CopyFrom lost register state")
	}
	if dst.ReadMem32(0x9000) != 0 {
		t.Fatal("CopyFrom kept stale speculative state")
	}
	for i := uint32(0); i < 40; i++ {
		if dst.ReadMem32(0x2000+8*i) != i {
			t.Fatalf("CopyFrom lost spilled word %d", i)
		}
	}
	// Divergence after copy.
	dst.WriteMem32(0x2000, 999)
	if src.ReadMem32(0x2000) != 0 {
		t.Fatal("copy writes leaked into source")
	}

	m2 := NewMachine()
	m2.Regs[isa.T0] = 77
	dst.Rebase(m2)
	if dst.Dirty() || dst.ReadReg(isa.T0) != 77 || dst.Base() != State(m2) {
		t.Fatal("Rebase did not reset onto the new base")
	}
}

// TestOverlaySteadyStateAllocs pins the tentpole property: once an
// overlay's spill table has grown to fit the footprint, further
// write/read/reset epochs allocate nothing.
func TestOverlaySteadyStateAllocs(t *testing.T) {
	m := NewMachine()
	o := NewOverlay(m)
	epoch := func() {
		for i := uint32(0); i < 100; i++ {
			o.WriteMem32(0x1000+4*i, i)
			o.WriteMem8(0x3000+i, byte(i))
		}
		for i := uint32(0); i < 100; i++ {
			_ = o.ReadMem32(0x1000 + 4*i)
		}
		o.Reset()
	}
	epoch() // warm the table up to footprint size
	if n := testing.AllocsPerRun(100, epoch); n != 0 {
		t.Fatalf("steady-state epoch allocates %v times, want 0", n)
	}
}

// FuzzOverlayStore drives the flat overlay and the map reference with the
// same operation stream and demands identical reads. The op stream is
// decoded from raw bytes: op, addr (2 bytes, keeping footprints collisive),
// value.
func FuzzOverlayStore(f *testing.F) {
	f.Add([]byte{0, 0x10, 0x00, 7, 1, 0x10, 0x02, 9})
	f.Add([]byte{2, 0x20, 0x00, 1, 3, 0x20, 0x00, 0, 4, 0, 0, 0})
	seed := make([]byte, 0, 400)
	for i := 0; i < 100; i++ { // long stream: guarantees inline-slot spill
		seed = append(seed, byte(i%5), byte(i*7), byte(i), byte(i*3))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		m := NewMachine()
		for i := uint32(0); i < 1024; i += 4 {
			m.Mem.Write32(i, i*2654435761)
		}
		o := NewOverlay(m)
		r := NewMapOverlay(m)
		for len(data) >= 4 {
			op, a1, a2, v := data[0], data[1], data[2], data[3]
			data = data[4:]
			addr := uint32(a1)<<8 | uint32(a2)
			switch op % 5 {
			case 0:
				o.WriteMem8(addr, v)
				r.WriteMem8(addr, v)
			case 1:
				o.WriteMem16(addr, uint16(v)<<8|uint16(v^0x5A))
				r.WriteMem16(addr, uint16(v)<<8|uint16(v^0x5A))
			case 2:
				o.WriteMem32(addr, uint32(v)*0x01010101)
				r.WriteMem32(addr, uint32(v)*0x01010101)
			case 3:
				if o.ReadMem8(addr) != r.ReadMem8(addr) ||
					o.ReadMem16(addr) != r.ReadMem16(addr) ||
					o.ReadMem32(addr) != r.ReadMem32(addr) {
					t.Fatalf("read mismatch at %#x", addr)
				}
			case 4:
				o.Reset()
				r.Reset()
			}
			if o.Dirty() != r.Dirty() {
				t.Fatalf("Dirty() mismatch: flat %v, map %v", o.Dirty(), r.Dirty())
			}
		}
		for a := uint32(0); a < 1024; a++ {
			if o.ReadMem8(a) != r.ReadMem8(a) {
				t.Fatalf("final sweep: ReadMem8(%#x) = %#x, map says %#x",
					a, o.ReadMem8(a), r.ReadMem8(a))
			}
		}
	})
}

// overlayStoreLoop is the shared benchmark body: a wrong-path-like epoch of
// word stores, partial stores, and reloads, ended by a Reset.
func overlayStoreLoop(b *testing.B, o SpecState) {
	b.ReportAllocs()
	var sink uint32
	// One untimed epoch first: the overlay's lazy structures (spill table,
	// map buckets) are built on first use, and CI compares allocs/op at
	// -benchtime 1x against the committed steady-state numbers.
	for w := uint32(0); w < 24; w++ {
		o.WriteMem32(0x1000+4*w, w)
	}
	o.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w := uint32(0); w < 24; w++ {
			o.WriteMem32(0x1000+4*w, w^uint32(i))
		}
		o.WriteMem8(0x1005, byte(i))
		for w := uint32(0); w < 24; w++ {
			sink += o.ReadMem32(0x1000 + 4*w)
		}
		o.Reset()
	}
	_ = sink
}

// BenchmarkOverlayStore measures the flat wrong-path overlay's store/load/
// reset epoch; BenchmarkOverlayStoreMap is the original map implementation
// on the same workload for comparison.
func BenchmarkOverlayStore(b *testing.B) {
	m := NewMachine()
	overlayStoreLoop(b, NewOverlay(m))
}

func BenchmarkOverlayStoreMap(b *testing.B) {
	m := NewMachine()
	overlayStoreLoop(b, NewMapOverlay(m))
}
