package emu

import "retstack/internal/isa"

// State is the register-and-memory view an instruction executes against.
// The architectural Machine implements it directly; the overlays implement
// it copy-on-write over another State so that mis-speculated (wrong-path)
// instructions can execute without corrupting architectural state.
type State interface {
	ReadReg(r int) uint32
	WriteReg(r int, v uint32)
	ReadMem8(addr uint32) byte
	WriteMem8(addr uint32, v byte)
	ReadMem16(addr uint32) uint16
	WriteMem16(addr uint32, v uint16)
	ReadMem32(addr uint32) uint32
	WriteMem32(addr uint32, v uint32)
}

// SpecState is the speculative (wrong-path) view the pipeline executes
// against: a State whose updates can be discarded in bulk. Two
// implementations exist: Overlay (the flat word-granular store, the
// default) and MapOverlay (the original per-byte map, kept as the A/B
// reference behind the -flat-overlay=false flag). Both are byte-exact over
// the same base; only the cost differs.
type SpecState interface {
	State
	Reset()
	Dirty() bool
}

// MapOverlay is the original copy-on-write view over a base State: register
// and memory writes land in the overlay; reads prefer the overlay and fall
// through to the base. Reset discards all speculative updates in O(dirty).
//
// Memory is tracked at byte granularity in a Go map, which keeps
// partial-word stores and overlapping wrong-path accesses exact but costs a
// map operation per byte touched and an allocation per Reset. It is
// retained verbatim as the semantic reference for Overlay (the flat
// replacement): the equivalence tests and the fuzzer run both and demand
// identical reads.
type MapOverlay struct {
	base     State
	regDirty uint32 // bitmap over the 32 architectural registers
	regs     [isa.NumRegs]uint32
	mem      map[uint32]byte
}

// NewMapOverlay returns an empty map overlay on base.
func NewMapOverlay(base State) *MapOverlay {
	return &MapOverlay{base: base, mem: make(map[uint32]byte)}
}

// Clone returns an independent overlay over the same base with a copy of
// the current speculative state (used when a wrong path forks).
func (o *MapOverlay) Clone() *MapOverlay {
	n := &MapOverlay{base: o.base, regDirty: o.regDirty, regs: o.regs,
		mem: make(map[uint32]byte, len(o.mem))}
	for k, v := range o.mem {
		n.mem[k] = v
	}
	return n
}

// Reset discards every speculative register and memory update.
func (o *MapOverlay) Reset() {
	o.regDirty = 0
	if len(o.mem) > 0 {
		o.mem = make(map[uint32]byte)
	}
}

// Dirty reports whether the overlay holds any speculative state.
func (o *MapOverlay) Dirty() bool { return o.regDirty != 0 || len(o.mem) > 0 }

// ReadReg implements State.
func (o *MapOverlay) ReadReg(r int) uint32 {
	if o.regDirty&(1<<uint(r)) != 0 {
		return o.regs[r]
	}
	return o.base.ReadReg(r)
}

// WriteReg implements State.
func (o *MapOverlay) WriteReg(r int, v uint32) {
	if r == isa.Zero {
		return
	}
	o.regDirty |= 1 << uint(r)
	o.regs[r] = v
}

// ReadMem8 implements State.
func (o *MapOverlay) ReadMem8(addr uint32) byte {
	if b, ok := o.mem[addr]; ok {
		return b
	}
	return o.base.ReadMem8(addr)
}

// WriteMem8 implements State.
func (o *MapOverlay) WriteMem8(addr uint32, v byte) { o.mem[addr] = v }

// ReadMem16 implements State.
func (o *MapOverlay) ReadMem16(addr uint32) uint16 {
	return uint16(o.ReadMem8(addr)) | uint16(o.ReadMem8(addr+1))<<8
}

// WriteMem16 implements State.
func (o *MapOverlay) WriteMem16(addr uint32, v uint16) {
	o.WriteMem8(addr, byte(v))
	o.WriteMem8(addr+1, byte(v>>8))
}

// ReadMem32 implements State.
func (o *MapOverlay) ReadMem32(addr uint32) uint32 {
	return uint32(o.ReadMem16(addr)) | uint32(o.ReadMem16(addr+2))<<16
}

// WriteMem32 implements State.
func (o *MapOverlay) WriteMem32(addr uint32, v uint32) {
	o.WriteMem16(addr, uint16(v))
	o.WriteMem16(addr+2, uint16(v>>16))
}
