package retstack_test

import (
	"strings"
	"testing"

	"retstack"
	"retstack/internal/asm"
)

func TestPublicRunMatchesReference(t *testing.T) {
	w, ok := retstack.WorkloadByName("compress")
	if !ok {
		t.Fatal("compress missing")
	}
	im, err := w.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := retstack.Reference(im, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := retstack.RunImage(retstack.Baseline(), im, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Error("run should complete")
	}
	if res.Output != want {
		t.Errorf("output %q, want %q", res.Output, want)
	}
}

func TestPublicRunBudget(t *testing.T) {
	w, _ := retstack.WorkloadByName("gcc")
	res, err := retstack.Run(retstack.Baseline(), w, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Done {
		t.Error("budgeted run should not complete")
	}
	if res.Stats.Committed < 50_000 {
		t.Errorf("committed %d < budget", res.Stats.Committed)
	}
}

func TestPublicWorkloadLists(t *testing.T) {
	if len(retstack.Workloads()) != 8 {
		t.Error("expected 8 SPEC clones")
	}
	if len(retstack.AllWorkloads()) <= 8 {
		t.Error("expected micro workloads too")
	}
	if _, ok := retstack.WorkloadByName("bogus"); ok {
		t.Error("bogus workload resolved")
	}
}

func TestPublicPolicies(t *testing.T) {
	ps := retstack.Policies()
	if len(ps) != 4 || ps[0] != retstack.RepairNone || ps[3] != retstack.RepairFullStack {
		t.Errorf("unexpected policy list %v", ps)
	}
}

func TestPublicExperimentAPI(t *testing.T) {
	ids := retstack.ExperimentIDs()
	if len(ids) != 17 {
		t.Errorf("expected 17 experiments, got %d (%v)", len(ids), ids)
	}
	for _, id := range ids {
		if _, ok := retstack.ExperimentTitle(id); !ok {
			t.Errorf("no title for %s", id)
		}
	}
	if _, ok := retstack.ExperimentTitle("zz"); ok {
		t.Error("bogus experiment has a title")
	}
	// t1 is cheap: run it end to end through the public API.
	res, err := retstack.Experiment("t1", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "RUU") {
		t.Errorf("t1 output missing config: %s", res)
	}
	if _, err := retstack.Experiment("zz", 0); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestPublicCustomImage(t *testing.T) {
	im, err := asm.Assemble(`
main:
    li $a0, 21
    jal double
    move $a0, $v0
    li $v0, 2
    syscall
    li $v0, 1
    li $a0, 0
    syscall
double:
    add $v0, $a0, $a0
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := retstack.RunImage(retstack.Baseline(), im, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "42\n" {
		t.Errorf("output %q", res.Output)
	}
	if res.Stats.Returns != 1 {
		t.Errorf("returns %d", res.Stats.Returns)
	}
}

func TestReferenceErrors(t *testing.T) {
	im, err := asm.Assemble("main:\nloop:\n  j loop\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := retstack.Reference(im, 1000); err == nil {
		t.Error("non-terminating reference should error")
	}
}
